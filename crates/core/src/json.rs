//! Minimal JSON value, reader and escaping-correct writer.
//!
//! The vendored `serde` is a no-op stub (no `serde_json`), so the
//! workspace carries one hand-rolled JSON layer — this module — shared by
//! everything that speaks JSON: the [`crate::artifact::BoundArtifact`]
//! encode/decode, the `mfu-serve` line-delimited request/response framing,
//! and the `mfu-bench` report reader (`mfu_bench::regression` re-exports
//! the reader half for its bench-regression guard).
//!
//! Scope: the full JSON data model with two deliberate restrictions.
//! Numbers are `f64` (integers above 2⁵³ lose precision, like JavaScript),
//! and object keys are sorted (`BTreeMap`), not insertion-ordered —
//! anything order-sensitive belongs in an array. The writer emits finite
//! numbers via Rust's shortest round-trip formatting, so
//! `parse(render(x))` reproduces every `f64` bit for bit; non-finite
//! numbers have no JSON spelling and render as `null`. Strings escape
//! quotes, backslashes and every control character (`\n`/`\r`/`\t`/`\b`/
//! `\f` short forms, `\u00XX` otherwise); the reader additionally accepts
//! arbitrary `\uXXXX` escapes including UTF-16 surrogate pairs.
//!
//! ```
//! use mfu_core::json::{parse, Json};
//!
//! let doc = parse(r#"{"model": "sir", "bounds": [0.125, 0.875]}"#)?;
//! assert_eq!(doc.get("model").and_then(Json::as_str), Some("sir"));
//! let width = doc.get("bounds").and_then(Json::as_array).map(|b| {
//!     b[1].as_f64().unwrap() - b[0].as_f64().unwrap()
//! });
//! assert_eq!(width, Some(0.75));
//! // the writer's shortest-round-trip formatting reproduces every f64
//! assert_eq!(parse(&doc.render())?, doc);
//! # Ok::<(), String>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed or constructed JSON value (numbers as `f64`, object keys
/// sorted).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (escape sequences decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs (later duplicates win).
    pub fn object<K: Into<String>>(entries: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(entries.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn string(value: impl Into<String>) -> Json {
        Json::String(value.into())
    }

    /// Builds an array of numbers.
    pub fn numbers(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Array(values.into_iter().map(Json::Number).collect())
    }

    /// Member lookup on an object (`None` for other variants or missing
    /// keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes the value as compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(v) => write_number(*v, out),
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes a finite number in Rust's shortest round-trip decimal form;
/// non-finite values (which JSON cannot express) degrade to `null`.
fn write_number(v: f64, out: &mut String) {
    use fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes and
/// all control characters.
pub fn write_string(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> String {
        format!("JSON parse error at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u16::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.error("malformed \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn unicode_escape(&mut self, out: &mut Vec<u8>) -> Result<(), String> {
        let unit = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&unit) {
            // high surrogate: a `\uXXXX` low surrogate must follow
            if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                return Err(self.error("unpaired UTF-16 surrogate"));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..0xE000).contains(&low) {
                return Err(self.error("invalid UTF-16 low surrogate"));
            }
            0x10000 + ((u32::from(unit) - 0xD800) << 10) + (u32::from(low) - 0xDC00)
        } else if (0xDC00..0xE000).contains(&unit) {
            return Err(self.error("unpaired UTF-16 surrogate"));
        } else {
            u32::from(unit)
        };
        let c = char::from_u32(code).ok_or_else(|| self.error("invalid \\u code point"))?;
        let mut buf = [0u8; 4];
        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| self.error("invalid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => self.unicode_escape(&mut out)?,
                        other => {
                            return Err(
                                self.error(&format!("unsupported escape `\\{}`", other as char))
                            )
                        }
                    }
                }
                Some(&b) => {
                    out.push(b);
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| self.error("malformed number"))
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).
///
/// # Errors
///
/// Returns a byte-positioned message on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage after document"));
    }
    Ok(value)
}

/// Flattens every numeric leaf into a `dotted.path → value` map (array
/// indices become path segments).
pub fn numeric_leaves(json: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    collect(json, String::new(), &mut out);
    out
}

fn collect(json: &Json, path: String, out: &mut BTreeMap<String, f64>) {
    match json {
        Json::Number(value) => {
            out.insert(path, *value);
        }
        Json::Object(entries) => {
            for (key, value) in entries {
                let child = if path.is_empty() {
                    key.clone()
                } else {
                    format!("{path}.{key}")
                };
                collect(value, child, out);
            }
        }
        Json::Array(items) => {
            for (index, value) in items.iter().enumerate() {
                collect(value, format!("{path}.{index}"), out);
            }
        }
        Json::Null | Json::Bool(_) | Json::String(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn values_render_compactly_and_reparse() {
        let doc = Json::object([
            ("name", Json::string("sir")),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            ("bounds", Json::numbers([0.25, -1.5e-8])),
        ]);
        let text = doc.render();
        assert!(!text.contains('\n'));
        assert_eq!(parse(&text).unwrap(), doc);
        // Display and render agree
        assert_eq!(format!("{doc}"), text);
    }

    #[test]
    fn writer_escapes_quotes_backslashes_and_control_chars() {
        let nasty = "say \"hi\"\\path\nline\ttab\rret\u{8}bell\u{c}\u{1}end";
        let rendered = Json::string(nasty).render();
        assert_eq!(
            rendered,
            "\"say \\\"hi\\\"\\\\path\\nline\\ttab\\rret\\bbell\\f\\u0001end\""
        );
        assert_eq!(parse(&rendered).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn reader_handles_utf8_and_unicode_escapes() {
        // raw multi-byte UTF-8 passes through untouched
        assert_eq!(parse("\"ϑ ∈ Θ\"").unwrap().as_str(), Some("ϑ ∈ Θ"));
        // \uXXXX escapes, including an astral-plane surrogate pair
        assert_eq!(
            parse("\"\\u03d1 and \\ud83e\\udd80\"").unwrap().as_str(),
            Some("ϑ and 🦀")
        );
        assert!(parse("\"\\ud83e\"").is_err(), "unpaired high surrogate");
        assert!(parse("\"\\udd80\"").is_err(), "unpaired low surrogate");
        assert!(parse("\"\\uZZZZ\"").is_err(), "malformed hex");
    }

    #[test]
    fn finite_numbers_round_trip_bit_for_bit() {
        for v in [
            0.0,
            -0.0,
            1.0,
            0.1,
            -1.5e-300,
            7.2e300,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            std::f64::consts::PI,
        ] {
            let text = Json::Number(v).render();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} rendered as {text}");
        }
        // non-finite values degrade to null rather than emit invalid JSON
        assert_eq!(Json::Number(f64::NAN).render(), "null");
        assert_eq!(Json::Number(f64::INFINITY).render(), "null");
    }

    #[test]
    fn accessors_narrow_variants() {
        let doc = parse(r#"{"a": [1, "x"], "b": {"c": false}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[0].as_f64(),
            Some(1.0)
        );
        assert_eq!(
            doc.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(false)
        );
        assert!(doc.get("missing").is_none());
        assert!(
            doc.get("a").unwrap().get("b").is_none(),
            "get on non-object"
        );
        assert_eq!(doc.as_object().unwrap().len(), 2);
        assert!(Json::Null.as_f64().is_none());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["", "{", "{\"a\": }", "[1,]", "{} trailing", "\"open", "tru"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    /// Maps a code point sample to a valid `char`, folding the surrogate
    /// gap onto ASCII so escapes, controls and astral planes all appear.
    fn char_from_sample(raw: u32) -> char {
        char::from_u32(raw).unwrap_or_else(|| char::from(u8::try_from(raw % 128).unwrap_or(b'?')))
    }

    proptest! {
        #[test]
        fn arbitrary_strings_round_trip(raws in prop::collection::vec(0u32..0x11_0000, 0..24)) {
            let s: String = raws.iter().copied().map(char_from_sample).collect();
            let rendered = Json::string(s.clone()).render();
            prop_assert_eq!(parse(&rendered).unwrap().as_str(), Some(s.as_str()));
        }

        #[test]
        fn arbitrary_finite_numbers_round_trip(bits in 0u64..u64::MAX) {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                let back = parse(&Json::Number(v).render()).unwrap().as_f64().unwrap();
                prop_assert_eq!(back.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn nested_documents_round_trip(
            pairs in prop::collection::vec((0u32..0x11_0000, -1.0e12f64..1.0e12), 0..6),
        ) {
            let entries: Vec<(String, Json)> = pairs
                .iter()
                .enumerate()
                .map(|(i, (raw, v))| {
                    let key = format!("{}{i}", char_from_sample(*raw));
                    let inner = Json::object([
                        ("x", Json::Number(*v)),
                        ("s", Json::string(key.clone())),
                    ]);
                    (key, inner)
                })
                .collect();
            let doc = Json::object(entries);
            prop_assert_eq!(parse(&doc.render()).unwrap(), doc);
        }
    }
}
