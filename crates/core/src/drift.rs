//! The imprecise drift `f(x, ϑ)` (Definition 3 of the paper).
//!
//! The entire mean-field analysis only interacts with a model through its
//! drift and its parameter space: the set-valued limit drift of Equation (4)
//! is `F(x) = {f(x, ϑ) : ϑ ∈ Θ}`, kept here in *parametrised* form. Every
//! algorithm of Section IV (differential hulls, Pontryagin sweeps, Birkhoff
//! expansion) reduces to optimising `f` — or a linear functional of `f` —
//! over `Θ`, which [`ImpreciseDrift::extremal_theta`] performs by vertex
//! enumeration with an optional grid refinement for drifts that are not
//! affine in `ϑ`.

use mfu_ctmc::params::ParamSpace;
use mfu_ctmc::population::PopulationModel;
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::StateVec;

/// A parametrised vector field `f(x, ϑ)` over an uncertainty set `Θ`.
///
/// The trait is object-safe; analyses take `&dyn ImpreciseDrift` so that
/// models, closures and wrappers can be mixed freely.
pub trait ImpreciseDrift {
    /// Dimension of the state space.
    fn dim(&self) -> usize;

    /// The uncertainty set `Θ`.
    fn params(&self) -> &ParamSpace;

    /// Evaluates `f(x, ϑ)` into `out`.
    fn drift_into(&self, x: &StateVec, theta: &[f64], out: &mut StateVec);

    /// Evaluates `f(x, ϑ)` into a fresh vector.
    fn drift(&self, x: &StateVec, theta: &[f64]) -> StateVec {
        let mut out = StateVec::zeros(self.dim());
        self.drift_into(x, theta, &mut out);
        out
    }

    /// Evaluates the drift lane-wise over a structure-of-arrays batch of
    /// states: lane `l` of `out` receives `f(x[l], ϑ[l])`.
    ///
    /// `out` is reshaped to `dim × width`. Implementations must be
    /// *bit-identical* to calling [`ImpreciseDrift::drift_into`] once per
    /// lane with that lane's state and parameters — the default does exactly
    /// that (a scalar gather loop), so overriding is purely a performance
    /// decision. The batched VM backend in `mfu-lang` overrides this to
    /// advance every lane through each rate instruction together.
    fn drift_batch_into(&self, x: &SoaBatch, theta: &BatchTheta<'_>, out: &mut SoaBatch) {
        assert_eq!(x.rows(), self.dim(), "state batch dimension mismatch");
        assert!(theta.covers(x.width()), "per-lane theta width mismatch");
        out.reset(self.dim(), x.width());
        let mut state = StateVec::zeros(self.dim());
        let mut lane_out = StateVec::zeros(self.dim());
        let mut theta_buf = Vec::new();
        for l in 0..x.width() {
            x.copy_lane_into(l, state.as_mut_slice());
            let th = theta.lane(l, &mut theta_buf);
            self.drift_into(&state, th, &mut lane_out);
            out.set_lane(l, lane_out.as_slice());
        }
    }

    /// Number of additional interior grid points per parameter axis used when
    /// optimising over `Θ`. The default (0) restricts the search to the
    /// vertices of the box, which is exact for drifts affine in `ϑ` — the
    /// case of every model in the paper. Override for drifts with non-affine
    /// parameter dependence.
    fn theta_refinement(&self) -> usize {
        0
    }

    /// The parameter vectors examined when optimising over `Θ`: the
    /// vertices of the box followed, when
    /// [`ImpreciseDrift::theta_refinement`] is positive, by a regular grid
    /// of the box.
    ///
    /// [`ImpreciseDrift::extremal_theta`] scans exactly this list in exactly
    /// this order; batched optimisers (the differential-hull construction)
    /// reuse it so that a lane-parallel scan visits candidates in the same
    /// sequence and reproduces the scalar argmax bit for bit.
    fn theta_candidates(&self) -> Vec<Vec<f64>> {
        let mut candidates = self.params().vertices();
        let refinement = self.theta_refinement();
        if refinement > 0 {
            candidates.extend(self.params().grid(refinement + 1));
        }
        candidates
    }

    /// Returns the parameter in `Θ` maximising the scalar functional
    /// `direction · f(x, ϑ)`, together with the attained value.
    ///
    /// The search scans [`ImpreciseDrift::theta_candidates`] in order. For
    /// drifts affine in `ϑ` the vertex search is exact, which is what
    /// produces the bang-bang extremal controls of Figure 2.
    fn extremal_theta(&self, x: &StateVec, direction: &StateVec) -> (Vec<f64>, f64) {
        let mut best_theta = self.params().midpoint();
        let mut best_value = f64::NEG_INFINITY;
        let mut buffer = StateVec::zeros(self.dim());
        for theta in self.theta_candidates() {
            self.drift_into(x, &theta, &mut buffer);
            let value = buffer.dot(direction);
            if value > best_value {
                best_value = value;
                best_theta = theta;
            }
        }
        (best_theta, best_value)
    }

    /// Component-wise extremes of the drift coordinate `i` over `Θ` at state `x`,
    /// returned as `(min, max)`. Used by the differential-hull construction.
    fn coordinate_range(&self, x: &StateVec, i: usize) -> (f64, f64) {
        let mut direction = StateVec::zeros(self.dim());
        direction[i] = 1.0;
        let (_, max) = self.extremal_theta(x, &direction);
        direction[i] = -1.0;
        let (_, neg_min) = self.extremal_theta(x, &direction);
        (-neg_min, max)
    }
}

impl<D: ImpreciseDrift + ?Sized> ImpreciseDrift for &D {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn params(&self) -> &ParamSpace {
        (**self).params()
    }

    fn drift_into(&self, x: &StateVec, theta: &[f64], out: &mut StateVec) {
        (**self).drift_into(x, theta, out)
    }

    fn drift_batch_into(&self, x: &SoaBatch, theta: &BatchTheta<'_>, out: &mut SoaBatch) {
        (**self).drift_batch_into(x, theta, out)
    }

    fn theta_refinement(&self) -> usize {
        (**self).theta_refinement()
    }
}

/// An imprecise drift defined by a closure.
///
/// This is the most direct way to express the reduced mean-field equations of
/// a model (for instance the two-dimensional SIR drift of Equation (11)).
///
/// # Example
///
/// ```
/// use mfu_core::drift::{FnDrift, ImpreciseDrift};
/// use mfu_ctmc::params::ParamSpace;
/// use mfu_num::StateVec;
///
/// let theta = ParamSpace::single("rate", 1.0, 2.0)?;
/// let drift = FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
///     dx[0] = -th[0] * x[0];
/// });
/// let (best, value) = drift.extremal_theta(&StateVec::from(vec![1.0]), &StateVec::from(vec![1.0]));
/// assert_eq!(best, vec![1.0]); // the slowest decay maximises ẋ
/// assert!((value + 1.0).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct FnDrift<F> {
    dim: usize,
    params: ParamSpace,
    f: F,
    refinement: usize,
}

impl<F> FnDrift<F>
where
    F: Fn(&StateVec, &[f64], &mut StateVec),
{
    /// Creates a drift from a closure writing `f(x, ϑ)` into its third argument.
    pub fn new(dim: usize, params: ParamSpace, f: F) -> Self {
        FnDrift {
            dim,
            params,
            f,
            refinement: 0,
        }
    }

    /// Enables grid refinement when optimising over `Θ` (for drifts that are
    /// not affine in `ϑ`): `points` interior samples per axis are added to
    /// the vertex search.
    #[must_use]
    pub fn with_theta_refinement(mut self, points: usize) -> Self {
        self.refinement = points;
        self
    }
}

impl<F> ImpreciseDrift for FnDrift<F>
where
    F: Fn(&StateVec, &[f64], &mut StateVec),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn params(&self) -> &ParamSpace {
        &self.params
    }

    fn drift_into(&self, x: &StateVec, theta: &[f64], out: &mut StateVec) {
        out.fill_zero();
        (self.f)(x, theta, out);
    }

    fn theta_refinement(&self) -> usize {
        self.refinement
    }
}

/// The drift of a [`PopulationModel`], exposing the population layer to the
/// mean-field analyses.
#[derive(Debug, Clone)]
pub struct PopulationDrift {
    model: PopulationModel,
}

impl PopulationDrift {
    /// Wraps a population model.
    pub fn new(model: PopulationModel) -> Self {
        PopulationDrift { model }
    }

    /// The wrapped model.
    pub fn model(&self) -> &PopulationModel {
        &self.model
    }
}

impl ImpreciseDrift for PopulationDrift {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn params(&self) -> &ParamSpace {
        self.model.params()
    }

    fn drift_into(&self, x: &StateVec, theta: &[f64], out: &mut StateVec) {
        self.model.drift_unchecked(x, theta, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_ctmc::params::Interval;
    use mfu_ctmc::transition::TransitionClass;

    fn linear_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let params = ParamSpace::new(vec![
            ("a", Interval::new(1.0, 2.0).unwrap()),
            ("b", Interval::new(-1.0, 1.0).unwrap()),
        ])
        .unwrap();
        FnDrift::new(2, params, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0] * x[0] + th[1];
            dx[1] = -x[1] + th[1];
        })
    }

    #[test]
    fn drift_and_drift_into_agree() {
        let d = linear_drift();
        let x = StateVec::from([2.0, 3.0]);
        let owned = d.drift(&x, &[1.5, 0.5]);
        let mut buf = StateVec::zeros(2);
        d.drift_into(&x, &[1.5, 0.5], &mut buf);
        assert_eq!(owned, buf);
        assert!((owned[0] - 3.5).abs() < 1e-12);
        assert!((owned[1] + 2.5).abs() < 1e-12);
    }

    #[test]
    fn extremal_theta_picks_the_right_vertex() {
        let d = linear_drift();
        let x = StateVec::from([1.0, 0.0]);
        // maximise ẋ0 = a·x0 + b: best vertex is a = 2, b = 1
        let (theta, value) = d.extremal_theta(&x, &StateVec::from([1.0, 0.0]));
        assert_eq!(theta, vec![2.0, 1.0]);
        assert!((value - 3.0).abs() < 1e-12);
        // minimise ẋ0 (maximise its negation): a = 1, b = -1
        let (theta, value) = d.extremal_theta(&x, &StateVec::from([-1.0, 0.0]));
        assert_eq!(theta, vec![1.0, -1.0]);
        assert!((value - 0.0).abs() < 1e-12);
    }

    #[test]
    fn coordinate_range_brackets_all_vertices() {
        let d = linear_drift();
        let x = StateVec::from([1.0, 0.5]);
        let (lo, hi) = d.coordinate_range(&x, 0);
        assert!((lo - 0.0).abs() < 1e-12); // a=1, b=-1 → 1*1 - 1 = 0
        assert!((hi - 3.0).abs() < 1e-12); // a=2, b=1 → 3
        for theta in d.params().vertices() {
            let v = d.drift(&x, &theta)[0];
            assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    #[test]
    fn refinement_helps_non_affine_drifts() {
        // drift quadratic in ϑ with an interior maximum at ϑ = 0.5
        let params = ParamSpace::single("theta", 0.0, 1.0).unwrap();
        let make = |refinement: usize| {
            FnDrift::new(
                1,
                params.clone(),
                |_x: &StateVec, th: &[f64], dx: &mut StateVec| {
                    dx[0] = th[0] * (1.0 - th[0]);
                },
            )
            .with_theta_refinement(refinement)
        };
        let x = StateVec::from([0.0]);
        let direction = StateVec::from([1.0]);
        let (_, vertex_only) = make(0).extremal_theta(&x, &direction);
        let (theta, refined) = make(20).extremal_theta(&x, &direction);
        assert!(
            vertex_only.abs() < 1e-12,
            "vertices alone miss the interior optimum"
        );
        assert!((refined - 0.25).abs() < 5e-3);
        assert!((theta[0] - 0.5).abs() < 0.1);
    }

    #[test]
    fn default_batch_drift_matches_scalar_per_lane() {
        let d = linear_drift();
        let states = [[2.0, 3.0], [0.5, -1.0], [0.0, 7.5]];
        let thetas = [[1.0, -1.0], [2.0, 1.0], [1.5, 0.25]];
        let x = SoaBatch::from_lanes(&states);
        let th = SoaBatch::from_lanes(&thetas);
        let mut out = SoaBatch::default();
        d.drift_batch_into(&x, &BatchTheta::PerLane(&th), &mut out);
        assert_eq!(out.rows(), 2);
        assert_eq!(out.width(), 3);
        for (l, state) in states.iter().enumerate() {
            let scalar = d.drift(&StateVec::from(*state), &thetas[l]);
            for i in 0..2 {
                assert_eq!(out.get(i, l).to_bits(), scalar[i].to_bits());
            }
        }
        // shared-theta layout takes the same path
        let mut shared_out = SoaBatch::default();
        d.drift_batch_into(&x, &BatchTheta::Shared(&[1.5, 0.5]), &mut shared_out);
        for (l, state) in states.iter().enumerate() {
            let scalar = d.drift(&StateVec::from(*state), &[1.5, 0.5]);
            for i in 0..2 {
                assert_eq!(shared_out.get(i, l).to_bits(), scalar[i].to_bits());
            }
        }
    }

    #[test]
    fn theta_candidates_drive_the_extremal_scan() {
        let d = linear_drift();
        let candidates = d.theta_candidates();
        assert_eq!(candidates, d.params().vertices());
        let refined = FnDrift::new(
            1,
            ParamSpace::single("theta", 0.0, 1.0).unwrap(),
            |_x: &StateVec, th: &[f64], dx: &mut StateVec| {
                dx[0] = th[0] * (1.0 - th[0]);
            },
        )
        .with_theta_refinement(3);
        let candidates = refined.theta_candidates();
        let vertices = refined.params().vertices();
        assert_eq!(&candidates[..vertices.len()], &vertices[..]);
        assert_eq!(
            candidates.len(),
            vertices.len() + refined.params().grid(4).len()
        );
    }

    #[test]
    fn population_drift_delegates_to_model() {
        let params = ParamSpace::single("rate", 1.0, 2.0).unwrap();
        let model = PopulationModel::builder(1, params)
            .transition(TransitionClass::new(
                "grow",
                [1.0],
                |x: &StateVec, th: &[f64]| th[0] * x[0],
            ))
            .build()
            .unwrap();
        let drift = PopulationDrift::new(model);
        assert_eq!(drift.dim(), 1);
        assert_eq!(drift.params().dim(), 1);
        let v = drift.drift(&StateVec::from([2.0]), &[1.5]);
        assert!((v[0] - 3.0).abs() < 1e-12);
        assert_eq!(drift.model().transitions().len(), 1);
    }

    #[test]
    fn reference_impl_is_usable_as_dyn() {
        let d = linear_drift();
        let dyn_ref: &dyn ImpreciseDrift = &d;
        let through_ref = (&dyn_ref).drift(&StateVec::from([1.0, 1.0]), &[1.0, 0.0]);
        assert_eq!(through_ref.dim(), 2);
    }
}
