//! The differential-hull over-approximation (Section IV-B, Theorem 4).
//!
//! The hull replaces the `d`-dimensional differential inclusion by a
//! `2d`-dimensional ODE on a pair of vectors `(x̲, x̄)` such that every
//! solution of the inclusion stays coordinate-wise between them. Its
//! right-hand side pins coordinate `i` to the corresponding bound and
//! optimises the drift coordinate over the remaining rectangle
//! `[x̲, x̄]` *and* over `Θ`:
//!
//! ```text
//!  ẋ̲_i = min { f_i(x, ϑ) : x ∈ [x̲, x̄], x_i = x̲_i, ϑ ∈ Θ }
//!  ẋ̄_i = max { f_i(x, ϑ) : x ∈ [x̲, x̄], x_i = x̄_i, ϑ ∈ Θ }
//! ```
//!
//! The optimisation over the rectangle is performed by corner enumeration
//! (optionally refined with edge midpoints); the optimisation over `Θ` uses
//! [`ImpreciseDrift::coordinate_range`]. The paper (Figures 4 and 5) shows
//! that this method is cheap and accurate for small parameter ranges but
//! becomes very loose — eventually trivial — as the range grows, which is
//! exactly the behaviour reproduced by the benchmarks.

use std::cell::{Cell, RefCell};

use mfu_guard::{BudgetTracker, RunBudget, DIVERGENCE_CAP};
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::ode::{Integrator, OdeSystem, Rk4};
use mfu_num::StateVec;
use mfu_obs::{Counter, Field, Obs};

use crate::drift::ImpreciseDrift;
use crate::{CoreError, Result};

/// Coordinate-wise lower/upper bounds on a time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct HullBounds {
    times: Vec<f64>,
    lower: Vec<StateVec>,
    upper: Vec<StateVec>,
    truncated_at: Option<f64>,
}

impl HullBounds {
    /// The time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// When the wall-clock budget tripped mid-integration, the time up to
    /// which the bounds are valid; `None` for a completed integration.
    ///
    /// Truncated bounds still over-approximate the inclusion on the grid
    /// they cover — they just stop short of the requested horizon.
    pub fn truncated_at(&self) -> Option<f64> {
        self.truncated_at
    }

    /// Lower bounds aligned with [`HullBounds::times`].
    pub fn lower(&self) -> &[StateVec] {
        &self.lower
    }

    /// Upper bounds aligned with [`HullBounds::times`].
    pub fn upper(&self) -> &[StateVec] {
        &self.upper
    }

    /// Lower bound of coordinate `i` as a time series.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lower_series(&self, i: usize) -> Vec<f64> {
        self.lower.iter().map(|s| s[i]).collect()
    }

    /// Upper bound of coordinate `i` as a time series.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn upper_series(&self, i: usize) -> Vec<f64> {
        self.upper.iter().map(|s| s[i]).collect()
    }

    /// Bounds at the final time, as `(lower, upper)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are empty (cannot happen for constructed values).
    pub fn final_bounds(&self) -> (&StateVec, &StateVec) {
        (
            self.lower.last().expect("non-empty"),
            self.upper.last().expect("non-empty"),
        )
    }

    /// Returns `true` when `state` lies between the bounds at grid index `k`
    /// (up to `tolerance`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or dimensions disagree.
    pub fn contains_at(&self, k: usize, state: &StateVec, tolerance: f64) -> bool {
        (0..state.dim()).all(|i| {
            state[i] >= self.lower[k][i] - tolerance && state[i] <= self.upper[k][i] + tolerance
        })
    }
}

/// Options for the differential-hull integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HullOptions {
    /// Fixed RK4 step used to integrate the `2d`-dimensional hull ODE.
    pub step: f64,
    /// Number of time intervals of the reported bound grid.
    pub time_intervals: usize,
    /// When `true`, edge midpoints of the rectangle are added to the corner
    /// enumeration (helps for drifts that are not monotone in the state).
    pub refine_midpoints: bool,
    /// Optional clamp applied to both bounds after every report interval
    /// (e.g. `[0, 1]` for densities); `None` leaves the bounds unclamped.
    pub clamp: Option<(f64, f64)>,
    /// When `true` (the default), each bound evaluation batches every
    /// rectangle point × Θ-candidate drift into one
    /// [`ImpreciseDrift::drift_batch_into`] pass instead of one scalar call
    /// per pair. The results are bit-identical — the argmax reductions
    /// replicate the scalar scan order exactly — so this is purely a
    /// performance knob. Disable for drifts that override
    /// [`ImpreciseDrift::extremal_theta`] or
    /// [`ImpreciseDrift::coordinate_range`] with non-default semantics.
    pub batch_drift: bool,
    /// Run budget; only the wall-clock cap applies to the hull integration,
    /// checked once per report interval. A tripped deadline returns the
    /// bounds accumulated so far with
    /// [`HullBounds::truncated_at`] set instead of discarding them.
    pub budget: RunBudget,
}

impl Default for HullOptions {
    fn default() -> Self {
        HullOptions {
            step: 1e-3,
            time_intervals: 100,
            refine_midpoints: true,
            clamp: None,
            batch_drift: true,
            budget: RunBudget::unlimited(),
        }
    }
}

/// The differential-hull analysis of an imprecise drift.
pub struct DifferentialHull<D> {
    drift: D,
    options: HullOptions,
    obs: Obs,
}

impl<D: ImpreciseDrift> DifferentialHull<D> {
    /// Creates the analysis with the given options.
    pub fn new(drift: D, options: HullOptions) -> Self {
        DifferentialHull {
            drift,
            options,
            obs: Obs::none(),
        }
    }

    /// Attaches an observability bundle; [`DifferentialHull::bounds`] then
    /// reports how many rectangle-vertex drift evaluations it performed.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The options in use.
    pub fn options(&self) -> &HullOptions {
        &self.options
    }

    /// Integrates the hull ODE from the degenerate box `[x0, x0]` over
    /// `[0, t_end]` and reports the bounds on a uniform grid.
    ///
    /// # Errors
    ///
    /// Returns an error on dimension mismatches, invalid horizons, or
    /// integration failure.
    pub fn bounds(&self, x0: &StateVec, t_end: f64) -> Result<HullBounds> {
        if x0.dim() != self.drift.dim() {
            return Err(CoreError::invalid_input(
                "initial condition dimension mismatch",
            ));
        }
        if t_end <= 0.0 || !t_end.is_finite() {
            return Err(CoreError::invalid_input(
                "time horizon must be positive and finite",
            ));
        }
        let dim = self.drift.dim();
        let system = HullOde {
            drift: &self.drift,
            dim,
            refine_midpoints: self.options.refine_midpoints,
            batch_drift: self.options.batch_drift,
            theta_candidates: if self.options.batch_drift {
                self.drift.theta_candidates()
            } else {
                Vec::new()
            },
            vertex_evals: Cell::new(0),
            scratch: RefCell::new(HullScratch::default()),
        };

        // combined state: [lower | upper]
        let mut combined = StateVec::zeros(2 * dim);
        for i in 0..dim {
            combined[i] = x0[i];
            combined[dim + i] = x0[i];
        }

        let intervals = self.options.time_intervals.max(1);
        let dt = t_end / intervals as f64;
        let solver = Rk4::with_step(self.options.step.min(dt));

        let mut times = Vec::with_capacity(intervals + 1);
        let mut lower = Vec::with_capacity(intervals + 1);
        let mut upper = Vec::with_capacity(intervals + 1);
        let split = |c: &StateVec| {
            let lo: StateVec = (0..dim).map(|i| c[i]).collect();
            let hi: StateVec = (0..dim).map(|i| c[dim + i]).collect();
            (lo, hi)
        };
        let (lo0, hi0) = split(&combined);
        times.push(0.0);
        lower.push(lo0);
        upper.push(hi0);

        let mut tracker = BudgetTracker::start(&self.options.budget);
        let mut truncated_at = None;
        for k in 1..=intervals {
            if tracker.expired_now() {
                truncated_at = times.last().copied();
                break;
            }
            combined = solver.final_state(&system, 0.0, combined, dt)?;
            if mfu_guard::state_diverged(combined.as_slice(), DIVERGENCE_CAP) {
                return Err(CoreError::Diverged {
                    analysis: "differential hull",
                    time: dt * k as f64,
                });
            }
            if let Some((clamp_lo, clamp_hi)) = self.options.clamp {
                combined = combined.clamp_scalar(clamp_lo, clamp_hi);
            }
            // Keep the box well-formed: floating-point noise can make a lower
            // bound overtake its upper bound when the box collapses.
            for i in 0..dim {
                if combined[i] > combined[dim + i] {
                    let mid = 0.5 * (combined[i] + combined[dim + i]);
                    combined[i] = mid;
                    combined[dim + i] = mid;
                }
            }
            let (lo, hi) = split(&combined);
            times.push(dt * k as f64);
            lower.push(lo);
            upper.push(hi);
        }
        let vertex_evals = system.vertex_evals.get();
        self.obs
            .metrics
            .add(Counter::CoreHullVertexEvals, vertex_evals);
        if self.obs.tracer.is_enabled() {
            self.obs.tracer.event(
                "hull_bounds",
                &[
                    ("dim", Field::U64(dim as u64)),
                    ("t_end", Field::F64(t_end)),
                    ("intervals", Field::U64(intervals as u64)),
                    ("vertex_evals", Field::U64(vertex_evals)),
                ],
            );
        }
        Ok(HullBounds {
            times,
            lower,
            upper,
            truncated_at,
        })
    }
}

/// The `2d`-dimensional hull ODE.
struct HullOde<'a, D> {
    drift: &'a D,
    dim: usize,
    refine_midpoints: bool,
    batch_drift: bool,
    /// The Θ scan list of [`ImpreciseDrift::extremal_theta`], precomputed
    /// once (it does not depend on the state); empty when batching is off.
    theta_candidates: Vec<Vec<f64>>,
    // `OdeSystem::rhs` takes `&self`, so the eval tally lives in a `Cell`;
    // the hull ODE is integrated on one thread, making this sound and free.
    vertex_evals: Cell<u64>,
    scratch: RefCell<HullScratch>,
}

/// Reusable batch buffers for [`HullOde::extreme_over_box_batched`].
#[derive(Default)]
struct HullScratch {
    /// Rectangle points in visit order, point-major (`point · dim + i`).
    points: Vec<f64>,
    x: SoaBatch,
    thetas: SoaBatch,
    drifts: SoaBatch,
}

impl<D: ImpreciseDrift> HullOde<'_, D> {
    /// Visits the corner (and optionally midpoint) points of the rectangle
    /// `[lower, upper]` with coordinate `pin` fixed to `pin_value`, in a
    /// fixed deterministic order shared by the scalar and batched bound
    /// evaluations.
    fn for_each_rect_point<F: FnMut(&StateVec)>(
        &self,
        lower: &StateVec,
        upper: &StateVec,
        pin: usize,
        pin_value: f64,
        mut visit: F,
    ) {
        let free: Vec<usize> = (0..self.dim).filter(|&i| i != pin).collect();
        // per free coordinate: candidate values
        let candidates: Vec<Vec<f64>> = free
            .iter()
            .map(|&i| {
                let mut v = vec![lower[i], upper[i]];
                if self.refine_midpoints && upper[i] > lower[i] {
                    v.push(0.5 * (lower[i] + upper[i]));
                }
                v.dedup();
                v
            })
            .collect();

        let mut point = lower.clone();
        point[pin] = pin_value;

        // iterate over the Cartesian product of candidate values
        let mut indices = vec![0usize; free.len()];
        loop {
            for (slot, &coord) in free.iter().enumerate() {
                point[coord] = candidates[slot][indices[slot]];
            }
            visit(&point);
            // advance the multi-index
            let mut slot = 0;
            loop {
                if slot == free.len() {
                    return;
                }
                indices[slot] += 1;
                if indices[slot] < candidates[slot].len() {
                    break;
                }
                indices[slot] = 0;
                slot += 1;
            }
        }
    }

    /// Enumerates the corner (and optionally midpoint) values of the other
    /// coordinates, with coordinate `pin` fixed to `pin_value`, and returns
    /// the extreme of drift coordinate `pin` over those points and over `Θ`.
    fn extreme_over_box(
        &self,
        lower: &StateVec,
        upper: &StateVec,
        pin: usize,
        pin_value: f64,
        want_max: bool,
    ) -> f64 {
        if self.batch_drift {
            return self.extreme_over_box_batched(lower, upper, pin, pin_value, want_max);
        }
        let mut best = if want_max {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        self.for_each_rect_point(lower, upper, pin, pin_value, |point| {
            self.vertex_evals.set(self.vertex_evals.get() + 1);
            let (lo, hi) = self.drift.coordinate_range(point, pin);
            let value = if want_max { hi } else { lo };
            if (want_max && value > best) || (!want_max && value < best) {
                best = value;
            }
        });
        best
    }

    /// Batched twin of [`HullOde::extreme_over_box`]: one
    /// [`ImpreciseDrift::drift_batch_into`] pass evaluates every rectangle
    /// point × Θ-candidate pair, then the reduction replays the scalar
    /// `coordinate_range`/`extremal_theta` scans — same visit order, same
    /// comparisons, same left-to-right dot-product fold — on the batched
    /// values, so the result is bit-identical to the scalar path.
    fn extreme_over_box_batched(
        &self,
        lower: &StateVec,
        upper: &StateVec,
        pin: usize,
        pin_value: f64,
        want_max: bool,
    ) -> f64 {
        let scratch = &mut *self.scratch.borrow_mut();
        scratch.points.clear();
        let points = &mut scratch.points;
        self.for_each_rect_point(lower, upper, pin, pin_value, |point| {
            points.extend_from_slice(point.as_slice());
        });
        let n_points = points.len() / self.dim;
        let n_cands = self.theta_candidates.len();
        let width = n_points * n_cands;

        // lane p·C + c holds rectangle point p paired with Θ candidate c, so
        // the reduction walks lanes in exactly the scalar visit order
        scratch.x.reset(self.dim, width);
        scratch.thetas.reset(self.drift.params().dim(), width);
        for p in 0..n_points {
            let point = &scratch.points[p * self.dim..(p + 1) * self.dim];
            for (c, candidate) in self.theta_candidates.iter().enumerate() {
                scratch.x.set_lane(p * n_cands + c, point);
                scratch.thetas.set_lane(p * n_cands + c, candidate);
            }
        }
        self.drift.drift_batch_into(
            &scratch.x,
            &BatchTheta::PerLane(&scratch.thetas),
            &mut scratch.drifts,
        );

        // replay of `StateVec::dot` with the unit direction `sign · e_pin`:
        // the same left fold from 0.0 over every coordinate, zero terms
        // included, so even the sign of a zero result matches the scalar scan
        let dot_pin = |lane: usize, sign: f64| -> f64 {
            let mut acc = 0.0;
            for i in 0..self.dim {
                let dir = if i == pin { sign } else { 0.0 };
                acc += scratch.drifts.get(i, lane) * dir;
            }
            acc
        };

        let mut best = if want_max {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        for p in 0..n_points {
            self.vertex_evals.set(self.vertex_evals.get() + 1);
            // coordinate_range = extremal scan with +e_pin, then with −e_pin
            let mut max_value = f64::NEG_INFINITY;
            for c in 0..n_cands {
                let value = dot_pin(p * n_cands + c, 1.0);
                if value > max_value {
                    max_value = value;
                }
            }
            let mut neg_min = f64::NEG_INFINITY;
            for c in 0..n_cands {
                let value = dot_pin(p * n_cands + c, -1.0);
                if value > neg_min {
                    neg_min = value;
                }
            }
            let (lo, hi) = (-neg_min, max_value);
            let value = if want_max { hi } else { lo };
            if (want_max && value > best) || (!want_max && value < best) {
                best = value;
            }
        }
        best
    }
}

impl<D: ImpreciseDrift> OdeSystem for HullOde<'_, D> {
    fn dim(&self) -> usize {
        2 * self.dim
    }

    fn rhs(&self, _t: f64, combined: &StateVec, out: &mut StateVec) {
        let lower: StateVec = (0..self.dim).map(|i| combined[i]).collect();
        let upper_raw: StateVec = (0..self.dim).map(|i| combined[self.dim + i]).collect();
        // ensure a well-formed box even at intermediate RK stages
        let upper = lower.component_max(&upper_raw);
        for i in 0..self.dim {
            out[i] = self.extreme_over_box(&lower, &upper, i, lower[i], false);
            out[self.dim + i] = self.extreme_over_box(&lower, &upper, i, upper[i], true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use crate::inclusion::DifferentialInclusion;
    use crate::signal::PiecewiseSignal;
    use mfu_ctmc::params::ParamSpace;

    fn decay_drift(lo: f64, hi: f64) -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let theta = ParamSpace::single("rate", lo, hi).unwrap();
        FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0]
        })
    }

    #[test]
    fn hull_of_scalar_decay_matches_extreme_exponentials() {
        // For ẋ = -ϑx with x ≥ 0, the hull ODE is exact:
        // lower bound decays at rate ϑmax, upper bound at rate ϑmin.
        let hull = DifferentialHull::new(decay_drift(1.0, 2.0), HullOptions::default());
        let bounds = hull.bounds(&StateVec::from([1.0]), 1.0).unwrap();
        let k = bounds.times().len() - 1;
        assert!((bounds.lower()[k][0] - (-2.0f64).exp()).abs() < 1e-4);
        assert!((bounds.upper()[k][0] - (-1.0f64).exp()).abs() < 1e-4);
        let (lo, hi) = bounds.final_bounds();
        assert!(lo[0] <= hi[0]);
    }

    #[test]
    fn hull_contains_arbitrary_switching_solutions() {
        let drift = decay_drift(1.0, 3.0);
        let hull = DifferentialHull::new(&drift, HullOptions::default());
        let bounds = hull.bounds(&StateVec::from([1.0]), 2.0).unwrap();

        let inclusion = DifferentialInclusion::new(&drift);
        let signal = PiecewiseSignal::new(vec![0.5, 1.2], vec![vec![3.0], vec![1.0], vec![2.0]]);
        let traj = inclusion
            .solve_fixed_step(&signal, StateVec::from([1.0]), 2.0, 1e-3)
            .unwrap();
        for (k, &t) in bounds.times().iter().enumerate() {
            let state = traj.at(t).unwrap();
            assert!(bounds.contains_at(k, &state, 1e-6), "violated at t = {t}");
        }
    }

    #[test]
    fn hull_widens_with_parameter_range() {
        let narrow = DifferentialHull::new(decay_drift(1.0, 1.5), HullOptions::default())
            .bounds(&StateVec::from([1.0]), 1.0)
            .unwrap();
        let wide = DifferentialHull::new(decay_drift(0.5, 3.0), HullOptions::default())
            .bounds(&StateVec::from([1.0]), 1.0)
            .unwrap();
        let last = narrow.times().len() - 1;
        let narrow_width = narrow.upper()[last][0] - narrow.lower()[last][0];
        let wide_width = wide.upper()[last][0] - wide.lower()[last][0];
        assert!(wide_width > narrow_width);
    }

    #[test]
    fn coupled_system_hull_is_conservative() {
        // ẋ0 = ϑ(x1 - x0), ẋ1 = x0 - x1 : bounded coupling, hull must contain
        // both constant-parameter solutions.
        let theta = ParamSpace::single("coupling", 0.5, 2.0).unwrap();
        let drift = FnDrift::new(2, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0] * (x[1] - x[0]);
            dx[1] = x[0] - x[1];
        });
        let hull = DifferentialHull::new(&drift, HullOptions::default());
        let x0 = StateVec::from([1.0, 0.0]);
        let bounds = hull.bounds(&x0, 2.0).unwrap();
        let inclusion = DifferentialInclusion::new(&drift);
        for rate in [0.5, 1.0, 2.0] {
            let traj = inclusion.solve_constant(&[rate], x0.clone(), 2.0).unwrap();
            for (k, &t) in bounds.times().iter().enumerate() {
                let state = traj.at(t).unwrap();
                // tolerance covers the linear-interpolation error of the
                // reference trajectory between its adaptive nodes
                assert!(
                    bounds.contains_at(k, &state, 1e-3),
                    "rate {rate}, t {t}: state {state} vs [{}, {}]",
                    bounds.lower()[k],
                    bounds.upper()[k]
                );
            }
        }
    }

    #[test]
    fn clamping_keeps_bounds_in_the_simplex() {
        let drift = decay_drift(1.0, 10.0);
        let options = HullOptions {
            clamp: Some((0.0, 1.0)),
            ..HullOptions::default()
        };
        let bounds = DifferentialHull::new(&drift, options)
            .bounds(&StateVec::from([1.0]), 5.0)
            .unwrap();
        for (lo, hi) in bounds.lower().iter().zip(bounds.upper().iter()) {
            assert!(lo[0] >= 0.0 && hi[0] <= 1.0);
        }
    }

    #[test]
    fn input_validation() {
        let hull = DifferentialHull::new(decay_drift(1.0, 2.0), HullOptions::default());
        assert!(hull.bounds(&StateVec::from([1.0, 2.0]), 1.0).is_err());
        assert!(hull.bounds(&StateVec::from([1.0]), 0.0).is_err());
        assert_eq!(hull.options().time_intervals, 100);
    }

    #[test]
    fn vertex_evaluations_are_counted_and_deterministic() {
        let obs = Obs::with_metrics();
        let hull = DifferentialHull::new(decay_drift(1.0, 2.0), HullOptions::default())
            .with_obs(obs.clone());
        hull.bounds(&StateVec::from([1.0]), 1.0).unwrap();
        let first = obs
            .metrics
            .snapshot()
            .unwrap()
            .counter(Counter::CoreHullVertexEvals);
        assert!(first > 0);
        // the enumeration is deterministic: a second identical integration
        // performs exactly the same number of vertex evaluations
        hull.bounds(&StateVec::from([1.0]), 1.0).unwrap();
        let second = obs
            .metrics
            .snapshot()
            .unwrap()
            .counter(Counter::CoreHullVertexEvals);
        assert_eq!(second, 2 * first);
    }

    #[test]
    fn batched_bounds_are_bit_identical_to_scalar_bounds() {
        // the coupled 2-d drift exercises midpoint refinement and a
        // non-trivial rectangle enumeration; a refined Θ adds grid candidates
        let theta = ParamSpace::single("coupling", 0.5, 2.0).unwrap();
        let make_drift = || {
            FnDrift::new(
                2,
                theta.clone(),
                |x: &StateVec, th: &[f64], dx: &mut StateVec| {
                    dx[0] = th[0] * (x[1] - x[0]);
                    dx[1] = x[0] - x[1];
                },
            )
            .with_theta_refinement(2)
        };
        let x0 = StateVec::from([1.0, 0.0]);
        let scalar = DifferentialHull::new(
            make_drift(),
            HullOptions {
                batch_drift: false,
                ..HullOptions::default()
            },
        )
        .bounds(&x0, 1.0)
        .unwrap();
        let batched = DifferentialHull::new(
            make_drift(),
            HullOptions {
                batch_drift: true,
                ..HullOptions::default()
            },
        )
        .bounds(&x0, 1.0)
        .unwrap();
        assert_eq!(scalar.times(), batched.times());
        for k in 0..scalar.times().len() {
            for i in 0..2 {
                assert_eq!(
                    scalar.lower()[k][i].to_bits(),
                    batched.lower()[k][i].to_bits(),
                    "lower bound {i} at node {k}"
                );
                assert_eq!(
                    scalar.upper()[k][i].to_bits(),
                    batched.upper()[k][i].to_bits(),
                    "upper bound {i} at node {k}"
                );
            }
        }
    }

    #[test]
    fn batched_and_scalar_paths_count_vertex_evals_identically() {
        let count_with = |batch_drift: bool| {
            let obs = Obs::with_metrics();
            let hull = DifferentialHull::new(
                decay_drift(1.0, 2.0),
                HullOptions {
                    batch_drift,
                    ..HullOptions::default()
                },
            )
            .with_obs(obs.clone());
            hull.bounds(&StateVec::from([1.0]), 1.0).unwrap();
            obs.metrics
                .snapshot()
                .unwrap()
                .counter(Counter::CoreHullVertexEvals)
        };
        assert_eq!(count_with(false), count_with(true));
    }

    #[test]
    fn expired_deadline_returns_partial_bounds_instead_of_discarding_them() {
        let options = HullOptions {
            budget: RunBudget::unlimited().wall_clock(std::time::Duration::ZERO),
            ..HullOptions::default()
        };
        let hull = DifferentialHull::new(decay_drift(1.0, 2.0), options);
        let bounds = hull.bounds(&StateVec::from([1.0]), 1.0).unwrap();
        // the deadline was already expired, so only the initial node survives
        assert_eq!(bounds.truncated_at(), Some(0.0));
        assert_eq!(bounds.times(), &[0.0]);
        assert_eq!(bounds.lower().len(), 1);

        let unbudgeted = DifferentialHull::new(decay_drift(1.0, 2.0), HullOptions::default())
            .bounds(&StateVec::from([1.0]), 1.0)
            .unwrap();
        assert_eq!(unbudgeted.truncated_at(), None);
    }

    #[test]
    fn divergent_integration_is_diagnosed_with_a_time() {
        // ẋ = ϑx with ϑ ∈ [200, 300] blows past the divergence cap well
        // before the horizon while every intermediate value is still finite.
        let theta = ParamSpace::single("rate", 200.0, 300.0).unwrap();
        let drift = FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0] * x[0]
        });
        let options = HullOptions {
            step: 0.02,
            ..HullOptions::default()
        };
        let err = DifferentialHull::new(drift, options)
            .bounds(&StateVec::from([1.0]), 2.0)
            .unwrap_err();
        match err {
            CoreError::Diverged { analysis, time } => {
                assert_eq!(analysis, "differential hull");
                assert!(time > 0.0 && time <= 2.0);
            }
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn series_accessors_are_consistent() {
        let hull = DifferentialHull::new(decay_drift(1.0, 2.0), HullOptions::default());
        let bounds = hull.bounds(&StateVec::from([1.0]), 1.0).unwrap();
        let lo = bounds.lower_series(0);
        let hi = bounds.upper_series(0);
        assert_eq!(lo.len(), bounds.times().len());
        for k in 0..lo.len() {
            assert_eq!(lo[k], bounds.lower()[k][0]);
            assert_eq!(hi[k], bounds.upper()[k][0]);
            assert!(lo[k] <= hi[k] + 1e-12);
        }
    }
}
