//! The uncertain scenario (Corollary 1): constant-but-unknown parameters.
//!
//! When `ϑ` is an unknown constant of `Θ`, the mean-field limit is the family
//! of ODE solutions `{x^ϑ : ϑ ∈ Θ}`. Its envelope (per-coordinate minimum and
//! maximum over `ϑ` at each time) is computed here by a parameter sweep on a
//! grid of `Θ` — the "numerical exploration of all the parameters ϑ" the
//! paper uses for the solid curves of Figure 1 — together with the per-`ϑ`
//! fixed points that trace the uncertain steady-state curve of Figures 3
//! and 5.

use mfu_num::ode::{equilibrium, EquilibriumOptions, FnSystem, Integrator, Rk4};
use mfu_num::StateVec;

use crate::drift::ImpreciseDrift;
use crate::{CoreError, Result};

/// Per-coordinate envelope of a family of trajectories on a common time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    times: Vec<f64>,
    lower: Vec<StateVec>,
    upper: Vec<StateVec>,
}

impl Envelope {
    /// The common time grid.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Lower bounds, aligned with [`Envelope::times`].
    pub fn lower(&self) -> &[StateVec] {
        &self.lower
    }

    /// Upper bounds, aligned with [`Envelope::times`].
    pub fn upper(&self) -> &[StateVec] {
        &self.upper
    }

    /// Lower bound of coordinate `i` as a time series.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn lower_series(&self, i: usize) -> Vec<f64> {
        self.lower.iter().map(|s| s[i]).collect()
    }

    /// Upper bound of coordinate `i` as a time series.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn upper_series(&self, i: usize) -> Vec<f64> {
        self.upper.iter().map(|s| s[i]).collect()
    }

    /// Width (upper minus lower) of coordinate `i` at grid index `k`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn width(&self, k: usize, i: usize) -> f64 {
        self.upper[k][i] - self.lower[k][i]
    }

    /// Returns `true` when `state` lies inside the envelope at grid index `k`
    /// (up to `tolerance` per coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or dimensions disagree.
    pub fn contains_at(&self, k: usize, state: &StateVec, tolerance: f64) -> bool {
        (0..state.dim()).all(|i| {
            state[i] >= self.lower[k][i] - tolerance && state[i] <= self.upper[k][i] + tolerance
        })
    }
}

/// A fixed point of the mean-field ODE for one candidate parameter value.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPoint {
    /// The parameter value.
    pub theta: Vec<f64>,
    /// The equilibrium state reached from the seed initial condition.
    pub state: StateVec,
}

/// Parameter-sweep analysis of the uncertain scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertainAnalysis {
    /// Grid resolution per parameter axis (number of intervals).
    pub grid_per_axis: usize,
    /// Number of time intervals of the envelope grid.
    pub time_intervals: usize,
    /// Fixed integration step used for each candidate parameter.
    pub step: f64,
}

impl Default for UncertainAnalysis {
    fn default() -> Self {
        UncertainAnalysis {
            grid_per_axis: 20,
            time_intervals: 100,
            step: 1e-3,
        }
    }
}

impl UncertainAnalysis {
    /// Computes the envelope of the constant-`ϑ` trajectories from `x0` over
    /// `[0, t_end]`.
    ///
    /// # Errors
    ///
    /// Returns an error if inputs are inconsistent or integration fails for
    /// some candidate parameter.
    pub fn envelope<D: ImpreciseDrift>(
        &self,
        drift: &D,
        x0: &StateVec,
        t_end: f64,
    ) -> Result<Envelope> {
        if x0.dim() != drift.dim() {
            return Err(CoreError::invalid_input(
                "initial condition dimension mismatch",
            ));
        }
        if t_end <= 0.0 || !t_end.is_finite() {
            return Err(CoreError::invalid_input(
                "time horizon must be positive and finite",
            ));
        }
        let times: Vec<f64> = (0..=self.time_intervals)
            .map(|k| t_end * k as f64 / self.time_intervals as f64)
            .collect();
        let dim = drift.dim();
        let mut lower = vec![StateVec::filled(dim, f64::INFINITY); times.len()];
        let mut upper = vec![StateVec::filled(dim, f64::NEG_INFINITY); times.len()];

        let solver = Rk4::with_step(self.step);
        for theta in drift.params().grid(self.grid_per_axis) {
            let system = FnSystem::new(dim, |_t, x: &StateVec, dx: &mut StateVec| {
                drift.drift_into(x, &theta, dx);
            });
            let traj = solver.integrate(&system, 0.0, x0.clone(), t_end)?;
            for (k, &t) in times.iter().enumerate() {
                let state = traj.at(t)?;
                for i in 0..dim {
                    lower[k][i] = lower[k][i].min(state[i]);
                    upper[k][i] = upper[k][i].max(state[i]);
                }
            }
        }
        Ok(Envelope {
            times,
            lower,
            upper,
        })
    }

    /// Computes the fixed point of the mean-field ODE for every parameter on
    /// the sweep grid, starting each equilibrium search from `seed`.
    ///
    /// Parameters whose trajectory does not settle (limit cycles, divergence)
    /// are skipped; the paper's SIR and GPS models always settle.
    ///
    /// # Errors
    ///
    /// Returns an error if the seed has the wrong dimension or *no* parameter
    /// produced a fixed point.
    pub fn fixed_points<D: ImpreciseDrift>(
        &self,
        drift: &D,
        seed: &StateVec,
    ) -> Result<Vec<FixedPoint>> {
        if seed.dim() != drift.dim() {
            return Err(CoreError::invalid_input("seed dimension mismatch"));
        }
        let dim = drift.dim();
        let options = EquilibriumOptions {
            step: self.step.max(1e-3),
            drift_tolerance: 1e-8,
            ..EquilibriumOptions::default()
        };
        let mut out = Vec::new();
        for theta in drift.params().grid(self.grid_per_axis) {
            let system = FnSystem::new(dim, |_t, x: &StateVec, dx: &mut StateVec| {
                drift.drift_into(x, &theta, dx);
            });
            if let Ok(state) = equilibrium(&system, seed.clone(), &options) {
                out.push(FixedPoint { theta, state });
            }
        }
        if out.is_empty() {
            return Err(CoreError::NoConvergence {
                analysis: "uncertain fixed points",
                iterations: self.grid_per_axis + 1,
                residual: f64::NAN,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use mfu_ctmc::params::ParamSpace;

    fn decay_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let theta = ParamSpace::single("rate", 1.0, 2.0).unwrap();
        FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0]
        })
    }

    /// Logistic-style drift whose fixed point depends on ϑ: ẋ = ϑ - x.
    fn affine_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let theta = ParamSpace::single("target", 0.25, 0.75).unwrap();
        FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0] - x[0]
        })
    }

    #[test]
    fn envelope_brackets_the_extreme_exponentials() {
        let drift = decay_drift();
        let analysis = UncertainAnalysis {
            grid_per_axis: 8,
            time_intervals: 20,
            step: 1e-3,
        };
        let envelope = analysis
            .envelope(&drift, &StateVec::from([1.0]), 1.0)
            .unwrap();
        assert_eq!(envelope.times().len(), 21);
        let k = 20; // t = 1
        assert!((envelope.lower()[k][0] - (-2.0f64).exp()).abs() < 1e-4);
        assert!((envelope.upper()[k][0] - (-1.0f64).exp()).abs() < 1e-4);
        assert!(envelope.width(k, 0) > 0.0);
        // interior constant parameters stay within the envelope
        assert!(envelope.contains_at(k, &StateVec::from([(-1.5f64).exp()]), 1e-9));
        assert!(!envelope.contains_at(k, &StateVec::from([0.9]), 1e-9));
        // series accessors agree with state accessors
        assert_eq!(envelope.lower_series(0)[k], envelope.lower()[k][0]);
        assert_eq!(envelope.upper_series(0)[k], envelope.upper()[k][0]);
    }

    #[test]
    fn envelope_is_degenerate_for_precise_parameters() {
        let theta = ParamSpace::single("rate", 1.5, 1.5).unwrap();
        let drift = FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0];
        });
        let analysis = UncertainAnalysis {
            grid_per_axis: 4,
            time_intervals: 10,
            step: 1e-3,
        };
        let envelope = analysis
            .envelope(&drift, &StateVec::from([1.0]), 1.0)
            .unwrap();
        for k in 0..envelope.times().len() {
            assert!(envelope.width(k, 0) < 1e-12);
        }
    }

    #[test]
    fn envelope_validates_inputs() {
        let drift = decay_drift();
        let analysis = UncertainAnalysis::default();
        assert!(analysis
            .envelope(&drift, &StateVec::from([1.0, 2.0]), 1.0)
            .is_err());
        assert!(analysis
            .envelope(&drift, &StateVec::from([1.0]), -1.0)
            .is_err());
    }

    #[test]
    fn fixed_points_trace_the_parameter_dependence() {
        let drift = affine_drift();
        let analysis = UncertainAnalysis {
            grid_per_axis: 4,
            time_intervals: 10,
            step: 1e-2,
        };
        let fps = analysis
            .fixed_points(&drift, &StateVec::from([0.0]))
            .unwrap();
        assert_eq!(fps.len(), 5);
        for fp in &fps {
            assert!((fp.state[0] - fp.theta[0]).abs() < 1e-5, "{fp:?}");
        }
    }

    #[test]
    fn fixed_points_validate_seed() {
        let drift = affine_drift();
        let analysis = UncertainAnalysis::default();
        assert!(analysis
            .fixed_points(&drift, &StateVec::from([0.0, 0.0]))
            .is_err());
    }
}
