//! Birkhoff centres of two-dimensional mean-field differential inclusions.
//!
//! Theorem 3 of the paper shows that the stationary measures of an imprecise
//! population process concentrate on the Birkhoff centre `B_F` of the
//! mean-field differential inclusion. For two-dimensional systems the paper
//! (Section V-C) gives a constructive procedure, reproduced here:
//!
//! 1. compute the fixed point of the ODE with `ϑ = ϑ^max`;
//! 2. integrate with `ϑ = ϑ^min` from that point, then with `ϑ = ϑ^max` from
//!    the new endpoint — the two arcs delimit an initial region;
//! 3. *expand*: look for boundary points where some `ϑ ∈ Θ` pushes the drift
//!    outward; if one exists, integrate a trajectory from there under that
//!    `ϑ` and grow the region; repeat until no boundary point can escape.
//!
//! The region is maintained as the convex hull of the trajectory point cloud,
//! matching the paper's description of the SIR steady state as "the convex
//! set delimited by the blue region". Once no drift direction points outward
//! anywhere on the boundary, no solution of the inclusion can leave the
//! region, so it contains the Birkhoff centre reachable from the seed.

use mfu_num::geometry::{convex_hull, Point2, Polygon};
use mfu_num::ode::{equilibrium, EquilibriumOptions, FnSystem, Integrator, Rk4};
use mfu_num::StateVec;

use crate::drift::ImpreciseDrift;
use crate::{CoreError, Result};

/// Options of the Birkhoff-centre construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BirkhoffOptions {
    /// Fixed integration step for every trajectory.
    pub step: f64,
    /// Length of the trajectory bursts used to seed and expand the region.
    pub settle_time: f64,
    /// Number of boundary sample points tested per expansion round.
    pub boundary_samples: usize,
    /// Maximum number of expansion rounds.
    pub max_expansions: usize,
    /// A boundary point expands the region when the drift moves it outside
    /// the current hull by more than this distance (scaled probe step).
    pub outward_tolerance: f64,
    /// Length of the probe step along the drift when testing for escape.
    pub probe_step: f64,
}

impl Default for BirkhoffOptions {
    fn default() -> Self {
        BirkhoffOptions {
            step: 1e-3,
            settle_time: 40.0,
            boundary_samples: 120,
            max_expansions: 60,
            outward_tolerance: 1e-6,
            probe_step: 1e-3,
        }
    }
}

/// The computed Birkhoff-centre region of a two-dimensional inclusion.
#[derive(Debug, Clone)]
pub struct BirkhoffCentre {
    hull: Polygon,
    cloud_size: usize,
    expansions: usize,
}

impl BirkhoffCentre {
    /// The region as a convex polygon in the `(x_0, x_1)` plane.
    pub fn polygon(&self) -> &Polygon {
        &self.hull
    }

    /// Number of trajectory points accumulated during the construction.
    pub fn cloud_size(&self) -> usize {
        self.cloud_size
    }

    /// Number of expansion rounds that actually grew the region.
    pub fn expansions(&self) -> usize {
        self.expansions
    }

    /// Area of the region.
    pub fn area(&self) -> f64 {
        self.hull.area()
    }

    /// Returns `true` when the (two-dimensional) state lies inside the region.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not have exactly two coordinates.
    pub fn contains_state(&self, state: &StateVec) -> bool {
        assert_eq!(
            state.dim(),
            2,
            "Birkhoff centre containment requires a 2-D state"
        );
        self.hull.contains(Point2::new(state[0], state[1]))
    }

    /// Returns `true` when the point lies inside the region.
    pub fn contains(&self, point: Point2) -> bool {
        self.hull.contains(point)
    }

    /// Fraction of the given points inside the region — the quantity that
    /// tends to 1 as `N` grows in Figure 6 of the paper.
    pub fn containment_fraction(&self, points: &[Point2]) -> f64 {
        self.hull.containment_fraction(points.iter())
    }
}

/// Computes the Birkhoff-centre region of a two-dimensional imprecise drift.
///
/// `seed` is the initial condition from which the first fixed point is
/// searched (any point of the domain of interest works for the paper's
/// models).
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedDimension`] when the drift is not
/// two-dimensional, propagates integration errors, and reports
/// non-convergence when the `ϑ^max` fixed point cannot be found.
pub fn birkhoff_centre_2d<D: ImpreciseDrift>(
    drift: &D,
    seed: &StateVec,
    options: &BirkhoffOptions,
) -> Result<BirkhoffCentre> {
    if drift.dim() != 2 {
        return Err(CoreError::UnsupportedDimension {
            required: 2,
            found: drift.dim(),
        });
    }
    if seed.dim() != 2 {
        return Err(CoreError::invalid_input("seed must be two-dimensional"));
    }
    let theta_max = drift.params().upper();
    let theta_min = drift.params().lower();
    let solver = Rk4::with_step(options.step);

    let ode_for = |theta: Vec<f64>| {
        FnSystem::new(2, move |_t, x: &StateVec, dx: &mut StateVec| {
            drift.drift_into(x, &theta, dx);
        })
    };

    // Step 1: fixed point under ϑ^max.
    let eq_options = EquilibriumOptions {
        step: options.step.max(1e-3),
        drift_tolerance: 1e-9,
        ..EquilibriumOptions::default()
    };
    let fp_max = equilibrium(&ode_for(theta_max.clone()), seed.clone(), &eq_options).map_err(
        |err| match err {
            mfu_num::NumError::NoConvergence {
                iterations,
                residual,
                ..
            } => CoreError::NoConvergence {
                analysis: "birkhoff fixed point (theta_max)",
                iterations,
                residual,
            },
            other => CoreError::Numerical(other),
        },
    )?;

    // Step 2: seed the region with the ϑ^min arc from the ϑ^max fixed point
    // and the ϑ^max arc back.
    let mut cloud: Vec<Point2> = vec![Point2::new(fp_max[0], fp_max[1])];
    let arc_min = solver.integrate(
        &ode_for(theta_min.clone()),
        0.0,
        fp_max.clone(),
        options.settle_time,
    )?;
    extend_cloud(&mut cloud, arc_min.states());
    let arc_max = solver.integrate(
        &ode_for(theta_max.clone()),
        0.0,
        arc_min.last_state().clone(),
        options.settle_time,
    )?;
    extend_cloud(&mut cloud, arc_max.states());

    let mut hull = hull_of_cloud(&cloud)?;

    // Step 3: boundary expansion.
    let theta_vertices = drift.params().vertices();
    let mut expansions = 0usize;
    let mut drift_buffer = StateVec::zeros(2);
    for _round in 0..options.max_expansions {
        let mut expanded = false;
        for sample in boundary_samples(&hull, options.boundary_samples) {
            let state = StateVec::from([sample.x, sample.y]);
            for theta in &theta_vertices {
                drift.drift_into(&state, theta, &mut drift_buffer);
                let probe = Point2::new(
                    sample.x + options.probe_step * drift_buffer[0],
                    sample.y + options.probe_step * drift_buffer[1],
                );
                if !hull.contains(probe)
                    && hull.distance_to_region(probe) > options.outward_tolerance
                {
                    // The drift pushes this boundary point outside: grow the
                    // region with a trajectory burst under that parameter.
                    let burst = solver.integrate(
                        &ode_for(theta.clone()),
                        0.0,
                        state.clone(),
                        options.settle_time,
                    )?;
                    extend_cloud(&mut cloud, burst.states());
                    expanded = true;
                    break;
                }
            }
            if expanded {
                break;
            }
        }
        if !expanded {
            break;
        }
        hull = hull_of_cloud(&cloud)?;
        expansions += 1;
    }

    Ok(BirkhoffCentre {
        hull,
        cloud_size: cloud.len(),
        expansions,
    })
}

fn extend_cloud(cloud: &mut Vec<Point2>, states: &[StateVec]) {
    cloud.extend(states.iter().map(|s| Point2::new(s[0], s[1])));
}

fn hull_of_cloud(cloud: &[Point2]) -> Result<Polygon> {
    match convex_hull(cloud) {
        Ok(hull) => Ok(hull),
        Err(_) => {
            // Degenerate cloud (e.g. a precise model whose trajectories all sit
            // at one fixed point): inflate to a tiny triangle around the
            // centroid so downstream containment queries remain meaningful.
            let n = cloud.len().max(1) as f64;
            let (cx, cy) = cloud
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x / n, sy + p.y / n));
            let eps = 1e-9;
            Ok(Polygon::new(vec![
                Point2::new(cx - eps, cy - eps),
                Point2::new(cx + eps, cy - eps),
                Point2::new(cx, cy + eps),
            ])?)
        }
    }
}

/// Samples points along the boundary of a polygon (vertices plus points
/// interpolated along edges), `count` in total.
fn boundary_samples(polygon: &Polygon, count: usize) -> Vec<Point2> {
    let vertices = polygon.vertices();
    let n = vertices.len();
    let per_edge = (count / n).max(1);
    let mut out = Vec::with_capacity(n * per_edge);
    for i in 0..n {
        let a = vertices[i];
        let b = vertices[(i + 1) % n];
        for k in 0..per_edge {
            let w = k as f64 / per_edge as f64;
            out.push(Point2::new(a.x + w * (b.x - a.x), a.y + w * (b.y - a.y)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use crate::inclusion::DifferentialInclusion;
    use crate::signal::PiecewiseSignal;
    use mfu_ctmc::params::ParamSpace;

    /// A rotation-plus-contraction toward a ϑ-dependent centre:
    /// ẋ = -(x - ϑ) - (y - 0.5), ẏ = (x - ϑ) - (y - 0.5).
    /// For fixed ϑ the unique fixed point is (ϑ, 0.5); as ϑ varies in
    /// [0.3, 0.7] the Birkhoff centre contains the segment of fixed points.
    fn spiral_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let theta = ParamSpace::single("center", 0.3, 0.7).unwrap();
        FnDrift::new(2, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -(x[0] - th[0]) - (x[1] - 0.5);
            dx[1] = (x[0] - th[0]) - (x[1] - 0.5);
        })
    }

    fn fast_options() -> BirkhoffOptions {
        BirkhoffOptions {
            step: 1e-2,
            settle_time: 20.0,
            boundary_samples: 60,
            max_expansions: 30,
            ..Default::default()
        }
    }

    #[test]
    fn region_contains_all_fixed_points_of_the_uncertain_model() {
        let drift = spiral_drift();
        let centre =
            birkhoff_centre_2d(&drift, &StateVec::from([0.5, 0.5]), &fast_options()).unwrap();
        assert!(centre.area() > 0.0);
        assert!(centre.cloud_size() > 10);
        for theta in [0.3, 0.4, 0.5, 0.6, 0.7] {
            assert!(
                centre.contains(Point2::new(theta, 0.5)),
                "fixed point ({theta}, 0.5) outside the Birkhoff centre"
            );
        }
    }

    #[test]
    fn region_traps_long_run_switching_trajectories() {
        let drift = spiral_drift();
        let centre =
            birkhoff_centre_2d(&drift, &StateVec::from([0.5, 0.5]), &fast_options()).unwrap();
        // Run a switching selection of the inclusion for a long time; after a
        // transient its states must be inside the region.
        let inclusion = DifferentialInclusion::new(&drift);
        let signal = PiecewiseSignal::new(
            vec![5.0, 10.0, 15.0],
            vec![vec![0.3], vec![0.7], vec![0.3], vec![0.7]],
        );
        let traj = inclusion
            .solve_fixed_step(&signal, StateVec::from([0.5, 0.5]), 20.0, 1e-2)
            .unwrap();
        for (t, state) in traj.iter() {
            if t < 5.0 {
                continue; // transient
            }
            assert!(
                centre
                    .polygon()
                    .distance_to_region(Point2::new(state[0], state[1]))
                    < 0.05,
                "state at t = {t} escaped the region"
            );
        }
    }

    #[test]
    fn precise_model_collapses_to_a_point_region() {
        let theta = ParamSpace::single("center", 0.5, 0.5).unwrap();
        let drift = FnDrift::new(2, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -(x[0] - th[0]);
            dx[1] = -(x[1] - 0.5);
        });
        let centre =
            birkhoff_centre_2d(&drift, &StateVec::from([0.9, 0.1]), &fast_options()).unwrap();
        assert!(centre.area() < 1e-6);
        assert!(centre.contains(Point2::new(0.5, 0.5)));
        assert_eq!(centre.expansions(), 0);
    }

    #[test]
    fn wider_parameter_ranges_give_larger_regions() {
        let make = |lo: f64, hi: f64| {
            let theta = ParamSpace::single("center", lo, hi).unwrap();
            let drift = FnDrift::new(2, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
                dx[0] = -(x[0] - th[0]) - (x[1] - 0.5);
                dx[1] = (x[0] - th[0]) - (x[1] - 0.5);
            });
            birkhoff_centre_2d(&drift, &StateVec::from([0.5, 0.5]), &fast_options())
                .unwrap()
                .area()
        };
        let narrow = make(0.45, 0.55);
        let wide = make(0.2, 0.8);
        assert!(wide > narrow, "wide {wide} should exceed narrow {narrow}");
    }

    #[test]
    fn dimension_checks() {
        let theta = ParamSpace::single("rate", 0.0, 1.0).unwrap();
        let one_d = FnDrift::new(1, theta, |_x: &StateVec, _th: &[f64], dx: &mut StateVec| {
            dx[0] = 0.0;
        });
        let err = birkhoff_centre_2d(&one_d, &StateVec::from([0.0]), &fast_options()).unwrap_err();
        assert!(matches!(
            err,
            CoreError::UnsupportedDimension {
                required: 2,
                found: 1
            }
        ));
        let drift = spiral_drift();
        assert!(birkhoff_centre_2d(&drift, &StateVec::from([0.0]), &fast_options()).is_err());
    }

    #[test]
    fn containment_fraction_counts_points() {
        let drift = spiral_drift();
        let centre =
            birkhoff_centre_2d(&drift, &StateVec::from([0.5, 0.5]), &fast_options()).unwrap();
        let inside = vec![Point2::new(0.5, 0.5), Point2::new(0.4, 0.5)];
        let mixed = vec![Point2::new(0.5, 0.5), Point2::new(5.0, 5.0)];
        assert!((centre.containment_fraction(&inside) - 1.0).abs() < 1e-12);
        assert!((centre.containment_fraction(&mixed) - 0.5).abs() < 1e-12);
        assert!(centre.contains_state(&StateVec::from([0.5, 0.5])));
    }
}
