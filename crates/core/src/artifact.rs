//! Serializable bound artifacts: the shared currency of CLI, server and
//! benches.
//!
//! A [`BoundArtifact`] records everything needed to *reuse* a transient
//! bound instead of recomputing it: which model (by content hash), which
//! method ([`BoundMethod::Hull`] or [`BoundMethod::Pontryagin`]), over
//! which parameter box and horizon, the per-species `[lower, upper]`
//! bounds at the horizon, plus provenance (was the computation truncated
//! by a budget?) and cost counters (wall clock, RK4 steps, Jacobian
//! evaluations, sweeps, hull vertex evaluations). The paper's guarantee
//! makes this sound: bounds hold for every query in the same
//! (parameter box, horizon) cell, so an artifact answers all of them.
//!
//! Artifacts encode to and decode from the hand-rolled [`crate::json`]
//! layer — bit-exact for every `f64` field — which makes them cacheable
//! (the `mfu-serve` artifact cache), diffable (stable key order, one
//! line) and bench-comparable (`rate_engine_report` emits them inside
//! its `served_query` section).
//!
//! ```
//! use mfu_core::artifact::{ArtifactCost, BoundArtifact, BoundMethod, ParamRange};
//!
//! let artifact = BoundArtifact {
//!     model: "sir".into(),
//!     model_hash: "decafbaddecafbad".into(),
//!     method: BoundMethod::Hull,
//!     horizon: 1.0,
//!     param_box: vec![ParamRange { name: "contact".into(), lo: 1.0, hi: 10.0 }],
//!     species: vec!["S".into(), "I".into()],
//!     lower: vec![0.25, 0.125],
//!     upper: vec![0.75, 0.5],
//!     truncated: false,
//!     cost: ArtifactCost { wall_ns: 1_000, ..ArtifactCost::default() },
//! };
//! // the wire form round-trips bit for bit through `mfu_core::json`
//! assert_eq!(BoundArtifact::parse(&artifact.render())?, artifact);
//! assert_eq!(BoundMethod::from_name("hull"), Some(BoundMethod::Hull));
//! # Ok::<(), String>(())
//! ```

use crate::hull::HullBounds;
use crate::json::{self, Json};

/// The bounding method that produced an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundMethod {
    /// Differential-hull over-approximation (Section IV-B).
    Hull,
    /// Pontryagin forward–backward sweeps (Section IV-C).
    Pontryagin,
}

impl BoundMethod {
    /// The wire name (`"hull"` / `"pontryagin"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            BoundMethod::Hull => "hull",
            BoundMethod::Pontryagin => "pontryagin",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "hull" => Some(BoundMethod::Hull),
            "pontryagin" => Some(BoundMethod::Pontryagin),
            _ => None,
        }
    }
}

/// One axis of the parameter box `Θ` an artifact was computed over.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamRange {
    /// Parameter name (declaration order is the θ coordinate order).
    pub name: String,
    /// Interval lower bound.
    pub lo: f64,
    /// Interval upper bound.
    pub hi: f64,
}

/// What a bound computation cost, for cache-economics reporting.
///
/// The counter fields mirror the `mfu-obs` core counters recorded during
/// the computation; `wall_ns` is measured directly around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArtifactCost {
    /// Wall-clock nanoseconds spent computing the bounds.
    pub wall_ns: u64,
    /// RK4 integration steps (Pontryagin sweeps).
    pub rk4_steps: u64,
    /// Finite-difference Jacobian evaluations (Pontryagin sweeps).
    pub jacobian_evals: u64,
    /// Forward–backward sweep iterations (Pontryagin).
    pub sweeps: u64,
    /// Drift evaluations at hull box corners/midpoints (hull).
    pub hull_vertex_evals: u64,
}

/// A serializable transient bound: method, model identity, query cell,
/// per-species bounds and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundArtifact {
    /// Model name (display only — the hash is the identity).
    pub model: String,
    /// Canonical content hash of the model (hex), as computed by
    /// `mfu_lang::hash::model_hash`.
    pub model_hash: String,
    /// The method that produced the bounds.
    pub method: BoundMethod,
    /// Analysis horizon `T`.
    pub horizon: f64,
    /// The parameter box `Θ` the bounds hold over, in θ coordinate order.
    pub param_box: Vec<ParamRange>,
    /// Names of the bounded coordinates, aligned with `lower`/`upper`.
    pub species: Vec<String>,
    /// Per-species lower bounds at the horizon.
    pub lower: Vec<f64>,
    /// Per-species upper bounds at the horizon.
    pub upper: Vec<f64>,
    /// `true` when a run budget truncated the computation: the bounds are
    /// still valid for the prefix that completed, but not extremal (and
    /// caches should not keep them).
    pub truncated: bool,
    /// Cost counters of the (cold) computation.
    pub cost: ArtifactCost,
}

/// Wire schema tag; bump on incompatible layout changes.
pub const ARTIFACT_SCHEMA: &str = "mfu.bound_artifact.v1";

impl BoundArtifact {
    /// Builds a hull artifact from computed [`HullBounds`], taking the
    /// per-species bounds at the final grid time.
    #[must_use]
    pub fn from_hull_bounds(
        model: impl Into<String>,
        model_hash: impl Into<String>,
        species: Vec<String>,
        param_box: Vec<ParamRange>,
        horizon: f64,
        bounds: &HullBounds,
        cost: ArtifactCost,
    ) -> Self {
        let (lower, upper) = bounds.final_bounds();
        BoundArtifact {
            model: model.into(),
            model_hash: model_hash.into(),
            method: BoundMethod::Hull,
            horizon,
            param_box,
            species,
            lower: lower.as_slice().to_vec(),
            upper: upper.as_slice().to_vec(),
            truncated: bounds.truncated_at().is_some(),
            cost,
        }
    }

    /// Encodes the artifact as a [`Json`] value.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object([
            ("schema", Json::string(ARTIFACT_SCHEMA)),
            ("model", Json::string(&*self.model)),
            ("model_hash", Json::string(&*self.model_hash)),
            ("method", Json::string(self.method.name())),
            ("horizon", Json::Number(self.horizon)),
            (
                "param_box",
                Json::Array(
                    self.param_box
                        .iter()
                        .map(|range| {
                            Json::object([
                                ("name", Json::string(&*range.name)),
                                ("lo", Json::Number(range.lo)),
                                ("hi", Json::Number(range.hi)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "species",
                Json::Array(self.species.iter().map(Json::string).collect()),
            ),
            ("lower", Json::numbers(self.lower.iter().copied())),
            ("upper", Json::numbers(self.upper.iter().copied())),
            ("truncated", Json::Bool(self.truncated)),
            (
                "cost",
                Json::object([
                    ("wall_ns", Json::Number(self.cost.wall_ns as f64)),
                    ("rk4_steps", Json::Number(self.cost.rk4_steps as f64)),
                    (
                        "jacobian_evals",
                        Json::Number(self.cost.jacobian_evals as f64),
                    ),
                    ("sweeps", Json::Number(self.cost.sweeps as f64)),
                    (
                        "hull_vertex_evals",
                        Json::Number(self.cost.hull_vertex_evals as f64),
                    ),
                ]),
            ),
        ])
    }

    /// Serializes the artifact as one line of JSON.
    #[must_use]
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Decodes an artifact from a [`Json`] value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(json: &Json) -> Result<Self, String> {
        let text_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("artifact field `{key}` missing or not a string"))
        };
        let number_field = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("artifact field `{key}` missing or not a number"))
        };
        let schema = text_field("schema")?;
        if schema != ARTIFACT_SCHEMA {
            return Err(format!("unsupported artifact schema `{schema}`"));
        }
        let method_name = text_field("method")?;
        let method = BoundMethod::from_name(&method_name)
            .ok_or_else(|| format!("unknown bound method `{method_name}`"))?;
        let param_box = json
            .get("param_box")
            .and_then(Json::as_array)
            .ok_or("artifact field `param_box` missing or not an array")?
            .iter()
            .map(|entry| {
                let name = entry
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("param_box entry missing `name`")?;
                let lo = entry
                    .get("lo")
                    .and_then(Json::as_f64)
                    .ok_or("param_box entry missing `lo`")?;
                let hi = entry
                    .get("hi")
                    .and_then(Json::as_f64)
                    .ok_or("param_box entry missing `hi`")?;
                Ok(ParamRange {
                    name: name.to_string(),
                    lo,
                    hi,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let species = json
            .get("species")
            .and_then(Json::as_array)
            .ok_or("artifact field `species` missing or not an array")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "species entry is not a string".to_string())
            })
            .collect::<Result<Vec<_>, String>>()?;
        let bounds_field = |key: &str| -> Result<Vec<f64>, String> {
            json.get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format!("artifact field `{key}` missing or not an array"))?
                .iter()
                .map(|v| {
                    v.as_f64()
                        .ok_or_else(|| format!("`{key}` entry is not a number"))
                })
                .collect()
        };
        let lower = bounds_field("lower")?;
        let upper = bounds_field("upper")?;
        if lower.len() != species.len() || upper.len() != species.len() {
            return Err(format!(
                "bounds/species length mismatch: {} species, {} lower, {} upper",
                species.len(),
                lower.len(),
                upper.len()
            ));
        }
        let cost_json = json.get("cost").ok_or("artifact field `cost` missing")?;
        let counter = |key: &str| -> Result<u64, String> {
            let raw = cost_json
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("cost field `{key}` missing or not a number"))?;
            Ok(raw.max(0.0) as u64)
        };
        Ok(BoundArtifact {
            model: text_field("model")?,
            model_hash: text_field("model_hash")?,
            method,
            horizon: number_field("horizon")?,
            param_box,
            species,
            lower,
            upper,
            truncated: json
                .get("truncated")
                .and_then(Json::as_bool)
                .ok_or("artifact field `truncated` missing or not a boolean")?,
            cost: ArtifactCost {
                wall_ns: counter("wall_ns")?,
                rk4_steps: counter("rk4_steps")?,
                jacobian_evals: counter("jacobian_evals")?,
                sweeps: counter("sweeps")?,
                hull_vertex_evals: counter("hull_vertex_evals")?,
            },
        })
    }

    /// Parses an artifact from its JSON text form.
    ///
    /// # Errors
    ///
    /// Returns a parse or schema message.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use crate::hull::{DifferentialHull, HullOptions};
    use mfu_ctmc::params::ParamSpace;
    use mfu_num::StateVec;

    fn sample_artifact() -> BoundArtifact {
        BoundArtifact {
            model: "sir".into(),
            model_hash: "00ff".into(),
            method: BoundMethod::Pontryagin,
            horizon: 3.0,
            param_box: vec![ParamRange {
                name: "contact".into(),
                lo: 1.0,
                hi: 10.0,
            }],
            species: vec!["S".into(), "I".into(), "R".into()],
            lower: vec![0.1, 0.2, 0.0],
            upper: vec![0.9, 0.5, 0.3],
            truncated: false,
            cost: ArtifactCost {
                wall_ns: 123_456,
                rk4_steps: 400,
                jacobian_evals: 40,
                sweeps: 7,
                hull_vertex_evals: 0,
            },
        }
    }

    #[test]
    fn artifacts_round_trip_bit_for_bit() {
        let artifact = sample_artifact();
        let text = artifact.render();
        let back = BoundArtifact::parse(&text).unwrap();
        assert_eq!(back, artifact);
        for (a, b) in artifact.lower.iter().zip(&back.lower) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // re-rendering is byte-stable (the cache's hit path relies on it)
        assert_eq!(back.render(), text);
    }

    #[test]
    fn decode_rejects_malformed_artifacts() {
        let artifact = sample_artifact();
        // wrong schema tag
        let mut wrong = artifact.to_json();
        if let Json::Object(entries) = &mut wrong {
            entries.insert("schema".into(), Json::string("mfu.other.v9"));
        }
        assert!(BoundArtifact::from_json(&wrong)
            .unwrap_err()
            .contains("schema"));
        // bounds/species mismatch
        let mut short = artifact.to_json();
        if let Json::Object(entries) = &mut short {
            entries.insert("lower".into(), Json::numbers([0.0]));
        }
        assert!(BoundArtifact::from_json(&short)
            .unwrap_err()
            .contains("length mismatch"));
        // unknown method
        let mut method = artifact.to_json();
        if let Json::Object(entries) = &mut method {
            entries.insert("method".into(), Json::string("birkhoff"));
        }
        assert!(BoundArtifact::from_json(&method)
            .unwrap_err()
            .contains("unknown bound method"));
        assert!(BoundArtifact::parse("{}").is_err());
        assert!(BoundArtifact::parse("not json").is_err());
    }

    #[test]
    fn hull_bounds_lift_into_artifacts() {
        let theta = ParamSpace::single("rate", 1.0, 2.0).unwrap();
        let drift = FnDrift::new(
            1,
            theta.clone(),
            |x: &StateVec, th: &[f64], dx: &mut StateVec| {
                dx[0] = -th[0] * x[0];
            },
        );
        let bounds = DifferentialHull::new(
            &drift,
            HullOptions {
                step: 1e-3,
                time_intervals: 10,
                ..Default::default()
            },
        )
        .bounds(&StateVec::from(vec![1.0]), 1.0)
        .unwrap();
        let artifact = BoundArtifact::from_hull_bounds(
            "decay",
            "beef",
            vec!["X".into()],
            vec![ParamRange {
                name: "rate".into(),
                lo: 1.0,
                hi: 2.0,
            }],
            1.0,
            &bounds,
            ArtifactCost::default(),
        );
        assert_eq!(artifact.method, BoundMethod::Hull);
        assert!(!artifact.truncated);
        let (lower, upper) = bounds.final_bounds();
        assert_eq!(artifact.lower[0].to_bits(), lower[0].to_bits());
        assert_eq!(artifact.upper[0].to_bits(), upper[0].to_bits());
        // e^-2 <= lower <= upper <= e^-1 up to hull overshoot
        assert!(artifact.lower[0] <= artifact.upper[0]);
        let reparsed = BoundArtifact::parse(&artifact.render()).unwrap();
        assert_eq!(reparsed, artifact);
    }

    #[test]
    fn method_names_round_trip() {
        for method in [BoundMethod::Hull, BoundMethod::Pontryagin] {
            assert_eq!(BoundMethod::from_name(method.name()), Some(method));
        }
        assert_eq!(BoundMethod::from_name("simplex"), None);
    }
}
