//! Reach tubes: per-coordinate bounds of the inclusion over a time grid.
//!
//! Figure 1 of the paper plots `x_I^min(t)` and `x_I^max(t)` as functions of
//! time. Because the extremal control depends on the horizon (the bang-bang
//! switching instant moves with `T`), a separate Pontryagin sweep is run for
//! every reported time; the result is a *tube* containing every solution of
//! the mean-field differential inclusion started from `x0`.

use mfu_num::StateVec;

use crate::drift::ImpreciseDrift;
use crate::pontryagin::{PontryaginOptions, PontryaginSolver};
use crate::{CoreError, Result};

/// Per-coordinate lower/upper reachable bounds on a time grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ReachTube {
    coordinate: usize,
    times: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl ReachTube {
    /// The coordinate this tube bounds.
    pub fn coordinate(&self) -> usize {
        self.coordinate
    }

    /// The time grid (excluding `t = 0`, where the state is the known `x0`).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Lower bounds aligned with [`ReachTube::times`].
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds aligned with [`ReachTube::times`].
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Width of the tube at grid index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn width(&self, k: usize) -> f64 {
        self.upper[k] - self.lower[k]
    }

    /// Largest width over the grid.
    pub fn max_width(&self) -> f64 {
        (0..self.times.len()).fold(0.0_f64, |m, k| m.max(self.width(k)))
    }

    /// Returns `true` when `value` lies inside the tube at grid index `k`
    /// (up to `tolerance`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn contains_at(&self, k: usize, value: f64, tolerance: f64) -> bool {
        value >= self.lower[k] - tolerance && value <= self.upper[k] + tolerance
    }

    /// Iterates over `(time, lower, upper)` rows — the series plotted in the
    /// paper's transient figures.
    pub fn rows(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        (0..self.times.len()).map(move |k| (self.times[k], self.lower[k], self.upper[k]))
    }
}

/// Options of the reach-tube computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReachTubeOptions {
    /// Number of reported time points (excluding `t = 0`).
    pub time_points: usize,
    /// Options of the per-horizon Pontryagin sweeps.
    pub pontryagin: PontryaginOptions,
}

impl Default for ReachTubeOptions {
    fn default() -> Self {
        ReachTubeOptions {
            time_points: 40,
            pontryagin: PontryaginOptions {
                grid_intervals: 200,
                ..Default::default()
            },
        }
    }
}

/// Computes the reach tube of coordinate `coordinate` over `[0, horizon]`.
///
/// Each reported time runs two Pontryagin sweeps (minimum and maximum); the
/// per-sweep grid is scaled with the horizon so that early times are not
/// over-resolved.
///
/// # Errors
///
/// Returns an error on inconsistent inputs or if any sweep fails.
pub fn reach_tube<D: ImpreciseDrift + Sync>(
    drift: &D,
    x0: &StateVec,
    horizon: f64,
    coordinate: usize,
    options: &ReachTubeOptions,
) -> Result<ReachTube> {
    if coordinate >= drift.dim() {
        return Err(CoreError::invalid_input("coordinate out of range"));
    }
    if options.time_points == 0 {
        return Err(CoreError::invalid_input(
            "reach tube needs at least one time point",
        ));
    }
    if horizon <= 0.0 || !horizon.is_finite() {
        return Err(CoreError::invalid_input(
            "horizon must be positive and finite",
        ));
    }
    let mut times = Vec::with_capacity(options.time_points);
    let mut lower = Vec::with_capacity(options.time_points);
    let mut upper = Vec::with_capacity(options.time_points);
    for k in 1..=options.time_points {
        let t = horizon * k as f64 / options.time_points as f64;
        // Scale the sweep grid with the sub-horizon, with a floor so short
        // horizons are still resolved.
        let grid_intervals =
            ((options.pontryagin.grid_intervals as f64) * (t / horizon).max(0.2)).round() as usize;
        let solver = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: grid_intervals.max(16),
            ..options.pontryagin
        });
        let (lo, hi) = solver.coordinate_extremes(drift, x0, t, coordinate)?;
        times.push(t);
        lower.push(lo);
        upper.push(hi);
    }
    Ok(ReachTube {
        coordinate,
        times,
        lower,
        upper,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use crate::inclusion::DifferentialInclusion;
    use crate::signal::PiecewiseSignal;
    use mfu_ctmc::params::ParamSpace;

    fn decay_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let theta = ParamSpace::single("rate", 1.0, 2.0).unwrap();
        FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0]
        })
    }

    fn fast_options() -> ReachTubeOptions {
        ReachTubeOptions {
            time_points: 8,
            pontryagin: PontryaginOptions {
                grid_intervals: 80,
                ..Default::default()
            },
        }
    }

    #[test]
    fn tube_of_scalar_decay_matches_extreme_exponentials() {
        let drift = decay_drift();
        let tube = reach_tube(&drift, &StateVec::from([1.0]), 2.0, 0, &fast_options()).unwrap();
        assert_eq!(tube.coordinate(), 0);
        assert_eq!(tube.times().len(), 8);
        for (t, lo, hi) in tube.rows() {
            assert!((lo - (-2.0 * t).exp()).abs() < 1e-3, "t = {t}");
            assert!((hi - (-t).exp()).abs() < 1e-3, "t = {t}");
            assert!(lo <= hi);
        }
        assert!(tube.max_width() > 0.0);
    }

    #[test]
    fn tube_contains_switching_selections() {
        let drift = decay_drift();
        let tube = reach_tube(&drift, &StateVec::from([1.0]), 2.0, 0, &fast_options()).unwrap();
        let inclusion = DifferentialInclusion::new(&drift);
        let signal = PiecewiseSignal::new(vec![0.7], vec![vec![2.0], vec![1.0]]);
        let traj = inclusion
            .solve_fixed_step(&signal, StateVec::from([1.0]), 2.0, 1e-3)
            .unwrap();
        for (k, &t) in tube.times().iter().enumerate() {
            let value = traj.at(t).unwrap()[0];
            assert!(tube.contains_at(k, value, 1e-4), "violated at t = {t}");
        }
    }

    #[test]
    fn tube_width_grows_with_time_for_the_decay_model() {
        let drift = decay_drift();
        let tube = reach_tube(&drift, &StateVec::from([1.0]), 1.0, 0, &fast_options()).unwrap();
        // early widths are smaller than the largest width
        assert!(tube.width(0) < tube.max_width() + 1e-12);
        assert!(tube.width(0) < tube.width(3));
    }

    #[test]
    fn input_validation() {
        let drift = decay_drift();
        let x0 = StateVec::from([1.0]);
        assert!(reach_tube(&drift, &x0, 1.0, 3, &fast_options()).is_err());
        assert!(reach_tube(&drift, &x0, -1.0, 0, &fast_options()).is_err());
        let zero_points = ReachTubeOptions {
            time_points: 0,
            ..fast_options()
        };
        assert!(reach_tube(&drift, &x0, 1.0, 0, &zero_points).is_err());
    }
}
