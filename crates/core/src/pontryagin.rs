//! Transient bounds via Pontryagin's maximum principle (Section IV-C).
//!
//! The extremal value `x_i^max(T) = sup { x_i(T) : x ∈ S_{F,x_0} }` of a
//! differential inclusion is an optimal-control problem: choose the
//! measurable signal `ϑ(t) ∈ Θ` that maximises the terminal value. Pontryagin's
//! principle gives necessary conditions — a costate `p` satisfying
//! `-ṗ = (∂f/∂x)ᵀ p` with a terminal condition aligned with the objective,
//! and `ϑ(t) ∈ argmax_ϑ  p(t)·f(x(t), ϑ)` — which this module solves with the
//! classical forward–backward sweep:
//!
//! 1. integrate the state forward under the current control;
//! 2. integrate the costate backward along that state;
//! 3. update the control pointwise from the Hamiltonian maximisation
//!    (exact vertex selection for drifts affine in `ϑ`, which yields the
//!    bang-bang controls of Figure 2);
//! 4. repeat until state and control stop changing.
//!
//! Arbitrary linear functionals `α·x(T)` are supported, which is what the
//! paper calls *template* refinement of the reachable set.

use mfu_guard::{BudgetTracker, RunBudget, DIVERGENCE_CAP};
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::grid::{GridSignal, TimeGrid};
use mfu_num::jacobian::{finite_difference_jacobian_into, Jacobian, JacobianScratch};
use mfu_num::ode::Trajectory;
use mfu_num::StateVec;
use mfu_obs::{Counter, Field, Gauge, Obs};

use crate::drift::ImpreciseDrift;
use crate::signal::GridParamSignal;
use crate::{CoreError, Result};

/// Acceptance cap on `‖J‖∞ · h` for the frozen-midpoint costate Jacobian.
///
/// The backward sweep freezes the Jacobian per interval, so one costate RK4
/// step amplifies `p` by up to `e^{‖J‖∞·h}`. Past the RK4 stability scale
/// (|λh| ≈ 2.8 on the real axis) the frozen-matrix step resolves nothing —
/// either the interval is genuinely too stiff for the grid, or (the common
/// case for guarded rates) the finite-difference stencil straddled a drift
/// discontinuity and the quotient is a jump artefact of order
/// `Δf / (2·jacobian_step)`, not a derivative. Such matrices are zeroed like
/// a failed evaluation (no costate motion on that interval) instead of being
/// integrated into an overflow. Smooth population drifts sit orders of
/// magnitude below this cap, so the gate is exercised only by discontinuous
/// models.
const MAX_COSTATE_STEP_GROWTH: f64 = 2.5;

/// A linear terminal objective `weights · x(T)`, maximised or minimised.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearObjective {
    weights: StateVec,
    maximize: bool,
}

impl LinearObjective {
    /// Maximises `weights · x(T)`.
    pub fn maximize(weights: StateVec) -> Self {
        LinearObjective {
            weights,
            maximize: true,
        }
    }

    /// Minimises `weights · x(T)`.
    pub fn minimize(weights: StateVec) -> Self {
        LinearObjective {
            weights,
            maximize: false,
        }
    }

    /// Maximises coordinate `i` of `x(T)` in a `dim`-dimensional system.
    pub fn maximize_coordinate(dim: usize, i: usize) -> Self {
        let mut weights = StateVec::zeros(dim);
        weights[i] = 1.0;
        LinearObjective::maximize(weights)
    }

    /// Minimises coordinate `i` of `x(T)` in a `dim`-dimensional system.
    pub fn minimize_coordinate(dim: usize, i: usize) -> Self {
        let mut weights = StateVec::zeros(dim);
        weights[i] = 1.0;
        LinearObjective::minimize(weights)
    }

    /// The weight vector.
    pub fn weights(&self) -> &StateVec {
        &self.weights
    }

    /// Whether the objective is maximised.
    pub fn is_maximization(&self) -> bool {
        self.maximize
    }

    /// The weights of the equivalent maximisation problem (negated for
    /// minimisation).
    fn ascent_weights(&self) -> StateVec {
        if self.maximize {
            self.weights.clone()
        } else {
            -&self.weights
        }
    }
}

/// Options of the forward–backward sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PontryaginOptions {
    /// Number of intervals of the shared time grid.
    pub grid_intervals: usize,
    /// Maximum number of sweep iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the sup-norm change of the state and control
    /// between iterations.
    pub tolerance: f64,
    /// Relaxation weight of the control update in `(0, 1]` (1 replaces the
    /// control outright; smaller values damp oscillations between sweeps).
    pub relaxation: f64,
    /// Finite-difference step for the drift Jacobian.
    pub jacobian_step: f64,
    /// When `true`, the sweep is restarted from every vertex of `Θ` in
    /// addition to the midpoint, and the best result is kept. Pontryagin's
    /// principle is only a necessary condition; multi-start protects against
    /// local extremals on higher-dimensional models (e.g. the 4-D GPS MAP
    /// drift) at a cost proportional to the number of vertices.
    pub multi_start: bool,
    /// When `true` (the default) and `multi_start` is off, the solver probes
    /// every vertex of `Θ` with a cheap constant-control forward integration
    /// after the single-start sweep. If any constant control beats the sweep's
    /// extremal — a sure sign the sweep settled on a local extremal — the
    /// solver escalates automatically: it reruns the sweep from every vertex
    /// and keeps the best result, exactly as `multi_start` would have.
    pub auto_escalate: bool,
    /// When `true` (the default), the finite-difference Jacobians of the
    /// costate sweep evaluate all `2·dim` perturbed drifts in one
    /// [`ImpreciseDrift::drift_batch_into`] pass, and the escalation ladder's
    /// Θ-vertex probes integrate every vertex in lockstep with one batched
    /// drift evaluation per RK4 stage. Results and observability counters
    /// are bit-identical to the scalar path; this is purely a performance
    /// knob.
    pub batch_drift: bool,
    /// Run budget for the sweep. `max_sweeps` caps the iterations of each
    /// restart (on top of `max_iterations`); `wall_clock` is checked once per
    /// sweep iteration, per restart. A tripped budget ends the sweep early
    /// with `converged() == false` instead of erroring — every iterate is a
    /// feasible selection of the inclusion, so the bound so far is valid,
    /// merely not extremal.
    pub budget: RunBudget,
}

impl Default for PontryaginOptions {
    fn default() -> Self {
        PontryaginOptions {
            grid_intervals: 400,
            max_iterations: 200,
            tolerance: 1e-7,
            relaxation: 1.0,
            jacobian_step: 1e-6,
            multi_start: false,
            auto_escalate: true,
            batch_drift: true,
            budget: RunBudget::unlimited(),
        }
    }
}

/// The extremal solution produced by a sweep: state, costate and control on a
/// shared grid, plus the attained objective value.
#[derive(Debug, Clone)]
pub struct ExtremalSolution {
    objective: LinearObjective,
    objective_value: f64,
    state: GridSignal,
    costate: GridSignal,
    control: GridSignal,
    converged: bool,
    iterations: usize,
}

impl ExtremalSolution {
    /// The attained value of `weights · x(T)`.
    pub fn objective_value(&self) -> f64 {
        self.objective_value
    }

    /// The objective this solution extremises.
    pub fn objective(&self) -> &LinearObjective {
        &self.objective
    }

    /// The extremal state on the sweep grid.
    pub fn state(&self) -> &GridSignal {
        &self.state
    }

    /// The costate on the sweep grid.
    pub fn costate(&self) -> &GridSignal {
        &self.costate
    }

    /// The extremal control on the sweep grid (piecewise constant per interval).
    pub fn control(&self) -> &GridSignal {
        &self.control
    }

    /// Whether the sweep met its convergence tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Number of sweep iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The extremal control as a parameter signal, ready to be replayed
    /// through [`DifferentialInclusion`](crate::inclusion::DifferentialInclusion).
    pub fn control_signal(&self) -> GridParamSignal {
        GridParamSignal::new(self.control.clone())
    }

    /// The extremal state as a dense trajectory.
    ///
    /// # Errors
    ///
    /// Returns an error if the grid is degenerate (cannot happen for
    /// solutions produced by the solver).
    pub fn state_trajectory(&self) -> Result<Trajectory> {
        let grid = self.state.grid();
        let mut traj = Trajectory::with_capacity(self.state.dim(), grid.nodes());
        for (k, value) in self.state.values().iter().enumerate() {
            traj.push(grid.node(k), value.clone())?;
        }
        Ok(traj)
    }

    /// Times at which the extremal control switches (changes by more than
    /// `tolerance` in sup norm between consecutive grid intervals). For
    /// drifts affine in `ϑ` these are the bang-bang switching instants.
    pub fn switching_times(&self, tolerance: f64) -> Vec<f64> {
        let grid = self.control.grid();
        let values = self.control.values();
        let mut out = Vec::new();
        for k in 1..values.len() {
            if values[k].distance_inf(&values[k - 1]) > tolerance {
                out.push(grid.node(k));
            }
        }
        out
    }
}

/// Forward–backward sweep solver for extremal values of the mean-field
/// differential inclusion.
#[derive(Debug, Clone)]
pub struct PontryaginSolver {
    options: PontryaginOptions,
    obs: Obs,
}

impl PontryaginSolver {
    /// Creates a solver with the given options.
    pub fn new(options: PontryaginOptions) -> Self {
        PontryaginSolver {
            options,
            obs: Obs::none(),
        }
    }

    /// Attaches an observability bundle: every solve flushes its RK4-step,
    /// Jacobian-evaluation, sweep-iteration and restart counts into
    /// `obs.metrics` (multi-start restarts run on scoped threads and share
    /// the handle's atomics), records which restart won as a gauge, and
    /// emits a `pontryagin_solve` trace event per solve. Results are
    /// unaffected — counters are flushed after the numerics finish.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The options in use.
    pub fn options(&self) -> &PontryaginOptions {
        &self.options
    }

    /// Maximises coordinate `i` of `x(T)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PontryaginSolver::solve`].
    pub fn maximize_coordinate<D: ImpreciseDrift + Sync>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        coordinate: usize,
    ) -> Result<ExtremalSolution> {
        self.solve(
            drift,
            x0,
            horizon,
            LinearObjective::maximize_coordinate(drift.dim(), coordinate),
        )
    }

    /// Minimises coordinate `i` of `x(T)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PontryaginSolver::solve`].
    pub fn minimize_coordinate<D: ImpreciseDrift + Sync>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        coordinate: usize,
    ) -> Result<ExtremalSolution> {
        self.solve(
            drift,
            x0,
            horizon,
            LinearObjective::minimize_coordinate(drift.dim(), coordinate),
        )
    }

    /// Returns `(min, max)` of coordinate `i` of `x(T)` over the solution set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PontryaginSolver::solve`].
    pub fn coordinate_extremes<D: ImpreciseDrift + Sync>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        coordinate: usize,
    ) -> Result<(f64, f64)> {
        let lo = self.minimize_coordinate(drift, x0, horizon, coordinate)?;
        let hi = self.maximize_coordinate(drift, x0, horizon, coordinate)?;
        Ok((lo.objective_value(), hi.objective_value()))
    }

    /// Runs the forward–backward sweep for an arbitrary linear objective.
    ///
    /// With [`PontryaginOptions::multi_start`] enabled the sweep is restarted
    /// from every vertex of `Θ` and the best extremal is returned. The
    /// restarts are independent, so they run in parallel across threads
    /// (reusing the scoped-thread pattern of `mfu-sim`'s ensembles); the
    /// result is selected in initialization order with strict improvement,
    /// exactly as the sequential loop did, so the outcome is deterministic
    /// regardless of thread scheduling.
    ///
    /// # Errors
    ///
    /// Returns an error on inconsistent inputs or when an integration step
    /// produces non-finite values. A sweep that merely fails to meet the
    /// convergence tolerance within the iteration budget is *not* an error;
    /// the returned solution reports `converged() == false`.
    pub fn solve<D: ImpreciseDrift + Sync>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        objective: LinearObjective,
    ) -> Result<ExtremalSolution> {
        let mut initializations = vec![drift.params().midpoint()];
        if self.options.multi_start {
            initializations.extend(drift.params().vertices());
        }
        let outcomes = self.sweep_all(drift, x0, horizon, &objective, initializations);

        // Deterministic selection: walk candidates in initialization order,
        // keeping the strictly better one — the sequential semantics.
        let sign = if objective.is_maximization() {
            1.0
        } else {
            -1.0
        };
        let mut restarts = 0u64;
        let mut best: Option<ExtremalSolution> = None;
        let mut best_index = 0usize;
        for (index, outcome) in outcomes {
            restarts += 1;
            let candidate = outcome?;
            let better = match &best {
                None => true,
                Some(current) => {
                    sign * candidate.objective_value() > sign * current.objective_value()
                }
            };
            if better {
                best = Some(candidate);
                best_index = index;
            }
        }
        let mut best = best.expect("at least one initialization is always attempted");

        // ---- escalation ladder ---------------------------------------------
        // Pontryagin's principle is only necessary: a single-start sweep can
        // settle on a local extremal. Probe every vertex of Θ with a cheap
        // constant-control forward integration; any probe beating the sweep's
        // extremal proves the sweep is not globally extremal, so escalate to
        // the full multi-start procedure and keep the best result.
        let mut escalated = false;
        if !self.options.multi_start && self.options.auto_escalate {
            let ascent = objective.ascent_weights();
            let margin = 10.0 * self.options.tolerance;
            let threshold = sign * best.objective_value() + margin;
            let mut probe_steps = 0u64;
            let suspicious = if self.options.batch_drift {
                // one lockstep integration evaluates every vertex probe; the
                // scan below then replays the scalar short-circuit so the
                // verdict and the RK4-step tally match the scalar path
                let vertices = drift.params().vertices();
                let values =
                    self.probe_constant_controls_batched(drift, x0, horizon, &vertices, &ascent);
                let mut found = false;
                for value in &values {
                    probe_steps += self.options.grid_intervals.max(1) as u64;
                    if value.is_some_and(|v| v > threshold) {
                        found = true;
                        break;
                    }
                }
                found
            } else {
                drift.params().vertices().into_iter().any(|vertex| {
                    probe_steps += self.options.grid_intervals.max(1) as u64;
                    self.probe_constant_control(drift, x0, horizon, &vertex, &ascent)
                        .is_ok_and(|value| value > threshold)
                })
            };
            self.obs.metrics.add(Counter::CoreRk4Steps, probe_steps);
            if suspicious {
                let offset = usize::try_from(restarts).unwrap_or(usize::MAX);
                let vertex_outcomes =
                    self.sweep_all(drift, x0, horizon, &objective, drift.params().vertices());
                for (index, outcome) in vertex_outcomes {
                    restarts += 1;
                    let candidate = outcome?;
                    if sign * candidate.objective_value() > sign * best.objective_value() {
                        best = candidate;
                        best_index = offset + index;
                    }
                }
                escalated = true;
                self.obs.metrics.add(Counter::CorePontryaginEscalations, 1);
            }
        }

        self.obs
            .metrics
            .add(Counter::CorePontryaginRestarts, restarts);
        self.obs
            .metrics
            .set_gauge(Gauge::CorePontryaginWinningRestart, best_index as u64);
        if self.obs.tracer.is_enabled() {
            self.obs.tracer.event(
                "pontryagin_solve",
                &[
                    ("restarts", Field::U64(restarts)),
                    ("winner", Field::U64(best_index as u64)),
                    ("escalated", Field::Bool(escalated)),
                    ("objective_value", Field::F64(best.objective_value())),
                    ("converged", Field::Bool(best.converged())),
                    ("iterations", Field::U64(best.iterations() as u64)),
                    ("maximize", Field::Bool(objective.is_maximization())),
                ],
            );
        }
        Ok(best)
    }

    /// Runs one sweep per initialization (in parallel when possible) and
    /// returns the outcomes sorted by initialization index.
    fn sweep_all<D: ImpreciseDrift + Sync>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        objective: &LinearObjective,
        initializations: Vec<Vec<f64>>,
    ) -> Vec<(usize, Result<ExtremalSolution>)> {
        let n = initializations.len();
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .min(n);
        let mut outcomes: Vec<(usize, Result<ExtremalSolution>)> = if threads <= 1 {
            initializations
                .into_iter()
                .enumerate()
                .map(|(i, initial)| {
                    (
                        i,
                        self.solve_from(drift, x0, horizon, objective.clone(), initial),
                    )
                })
                .collect()
        } else {
            let initializations = &initializations;
            let objective_ref = objective;
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        scope.spawn(move || {
                            let mut local = Vec::new();
                            let mut index = worker;
                            while index < n {
                                local.push((
                                    index,
                                    self.solve_from(
                                        drift,
                                        x0,
                                        horizon,
                                        objective_ref.clone(),
                                        initializations[index].clone(),
                                    ),
                                ));
                                index += threads;
                            }
                            local
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| {
                        // re-raise worker panics with their original payload
                        handle
                            .join()
                            .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                    })
                    .collect()
            })
        };
        outcomes.sort_by_key(|(index, _)| *index);
        outcomes
    }

    /// Terminal ascent value of the constant-control trajectory `ϑ ≡ theta`,
    /// the cheap feasibility probe of the escalation ladder. Every constant
    /// control is a feasible selection of the inclusion, so its terminal
    /// value is a certified lower bound on the (ascent) extremal value.
    fn probe_constant_control<D: ImpreciseDrift>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        theta: &[f64],
        ascent: &StateVec,
    ) -> Result<f64> {
        let grid = TimeGrid::new(0.0, horizon, self.options.grid_intervals.max(1))?;
        let h = grid.step();
        let mut rk4 = Rk4Scratch::new(drift.dim());
        let mut x = x0.clone();
        let mut next = StateVec::zeros(drift.dim());
        for _ in 0..grid.intervals() {
            rk4_step_into(
                &mut |x: &StateVec, dx: &mut StateVec| drift.drift_into(x, theta, dx),
                &x,
                h,
                &mut next,
                &mut rk4,
            )?;
            std::mem::swap(&mut x, &mut next);
        }
        Ok(ascent.dot(&x))
    }

    /// The lockstep twin of [`PontryaginSolver::probe_constant_control`]:
    /// integrates one lane per Θ vertex, evaluating all lanes' drifts with a
    /// single [`ImpreciseDrift::drift_batch_into`] call per RK4 stage. Each
    /// lane performs exactly the scalar probe's arithmetic (stage states
    /// `x + c·h·k`, weighted final sum, left-fold terminal dot product), so
    /// `out[v]` is bit-identical to the scalar probe of vertex `v`; a lane
    /// whose step goes non-finite reports `None`, matching the scalar
    /// probe's error.
    fn probe_constant_controls_batched<D: ImpreciseDrift>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        vertices: &[Vec<f64>],
        ascent: &StateVec,
    ) -> Vec<Option<f64>> {
        let lanes = vertices.len();
        if lanes == 0 {
            return Vec::new();
        }
        let Ok(grid) = TimeGrid::new(0.0, horizon, self.options.grid_intervals.max(1)) else {
            return vec![None; lanes];
        };
        let h = grid.step();
        let dim = drift.dim();

        let thetas = SoaBatch::from_lanes(vertices);
        let theta = BatchTheta::PerLane(&thetas);
        let mut x = SoaBatch::zeros(dim, lanes);
        for lane in 0..lanes {
            x.set_lane(lane, x0.as_slice());
        }
        let mut next = SoaBatch::zeros(dim, lanes);
        let mut stage = SoaBatch::zeros(dim, lanes);
        let mut k1 = SoaBatch::default();
        let mut k2 = SoaBatch::default();
        let mut k3 = SoaBatch::default();
        let mut k4 = SoaBatch::default();
        let mut alive = vec![true; lanes];

        // `stage[i] = x[i] + scale · k[i]` per lane, the batched replay of
        // `copy_from` + `add_scaled`
        fn stage_from(stage: &mut SoaBatch, x: &SoaBatch, scale: f64, k: &SoaBatch) {
            for i in 0..x.rows() {
                let row = stage.row_mut(i);
                row.copy_from_slice(x.row(i));
                for (s, &ki) in row.iter_mut().zip(k.row(i).iter()) {
                    *s += scale * ki;
                }
            }
        }

        for _ in 0..grid.intervals() {
            drift.drift_batch_into(&x, &theta, &mut k1);
            stage_from(&mut stage, &x, 0.5 * h, &k1);
            drift.drift_batch_into(&stage, &theta, &mut k2);
            stage_from(&mut stage, &x, 0.5 * h, &k2);
            drift.drift_batch_into(&stage, &theta, &mut k3);
            stage_from(&mut stage, &x, h, &k3);
            drift.drift_batch_into(&stage, &theta, &mut k4);
            for i in 0..dim {
                let row = next.row_mut(i);
                row.copy_from_slice(x.row(i));
                for ((((o, &a), &b), &c), &d) in row
                    .iter_mut()
                    .zip(k1.row(i).iter())
                    .zip(k2.row(i).iter())
                    .zip(k3.row(i).iter())
                    .zip(k4.row(i).iter())
                {
                    // the four sequential `add_scaled` updates of the scalar
                    // RK4 step, in the same order
                    *o += (h / 6.0) * a;
                    *o += (h / 3.0) * b;
                    *o += (h / 3.0) * c;
                    *o += (h / 6.0) * d;
                }
            }
            for (lane, lane_alive) in alive.iter_mut().enumerate() {
                if *lane_alive && !(0..dim).all(|i| next.get(i, lane).is_finite()) {
                    *lane_alive = false;
                }
            }
            std::mem::swap(&mut x, &mut next);
        }

        (0..lanes)
            .map(|lane| {
                if !alive[lane] {
                    return None;
                }
                // replay of `ascent.dot(&x)`: left fold from 0.0
                let mut acc = 0.0;
                for i in 0..dim {
                    acc += ascent[i] * x.get(i, lane);
                }
                Some(acc)
            })
            .collect()
    }

    /// One forward–backward sweep started from a constant control `initial`.
    fn solve_from<D: ImpreciseDrift>(
        &self,
        drift: &D,
        x0: &StateVec,
        horizon: f64,
        objective: LinearObjective,
        initial_control: Vec<f64>,
    ) -> Result<ExtremalSolution> {
        let dim = drift.dim();
        if x0.dim() != dim {
            return Err(CoreError::invalid_input(
                "initial condition dimension mismatch",
            ));
        }
        if objective.weights().dim() != dim {
            return Err(CoreError::invalid_input(
                "objective weight dimension mismatch",
            ));
        }
        if horizon <= 0.0 || !horizon.is_finite() {
            return Err(CoreError::invalid_input(
                "horizon must be positive and finite",
            ));
        }
        if !(self.options.relaxation > 0.0 && self.options.relaxation <= 1.0) {
            return Err(CoreError::invalid_input("relaxation must lie in (0, 1]"));
        }

        let grid = TimeGrid::new(0.0, horizon, self.options.grid_intervals.max(1))?;
        let n = grid.intervals();
        let h = grid.step();
        let ascent = objective.ascent_weights();
        let theta_dim = drift.params().dim();

        if initial_control.len() != theta_dim {
            return Err(CoreError::invalid_input(
                "initial control dimension mismatch",
            ));
        }
        // control per interval (value at node k applies on [t_k, t_{k+1}))
        let mut control: Vec<Vec<f64>> = vec![initial_control; n + 1];
        let mut state: Vec<StateVec> = vec![x0.clone(); n + 1];
        let mut costate: Vec<StateVec> = vec![StateVec::zeros(dim); n + 1];

        // Preallocated work buffers, reused by every RK4 stage and every
        // finite-difference Jacobian of the sweep: the inner loops below run
        // thousands of times per solve and allocate nothing.
        let mut rk4 = Rk4Scratch::new(dim);
        let mut jac = Jacobian::zeros(dim, dim);
        let mut jac_scratch = JacobianScratch::new(dim, dim);
        let mut jac_batch = BatchedJacobianScratch::default();
        let mut midpoint = StateVec::zeros(dim);

        let mut converged = false;
        let mut iterations = 0;
        // Observability tallies, accumulated in plain locals and flushed
        // once per solve (multi-start sweeps run on scoped threads; the
        // metrics handle's atomics make the flush thread-safe).
        let mut rk4_steps = 0u64;
        let mut jacobian_evals = 0u64;
        // Best (in the ascent sense) control seen so far. The sweep can
        // oscillate before converging; every iterate is a feasible selection
        // of the inclusion, so keeping the best one makes the reported bound
        // monotone across iterations.
        let mut best_value = f64::NEG_INFINITY;
        let mut best_control: Option<Vec<Vec<f64>>> = None;

        let max_iterations = match self.options.budget.max_sweeps {
            Some(cap) => self
                .options
                .max_iterations
                .min(usize::try_from(cap).unwrap_or(usize::MAX)),
            None => self.options.max_iterations,
        };
        let mut tracker = BudgetTracker::start(&self.options.budget);
        for iteration in 0..max_iterations {
            // A tripped deadline ends the sweep gracefully: every iterate is a
            // feasible selection, so the best control so far is still a valid
            // (if not extremal) bound, reported with `converged() == false`.
            if tracker.expired_now() {
                break;
            }
            iterations = iteration + 1;
            // ---- forward pass -------------------------------------------------
            let previous_state_end = state[n].clone();
            for k in 0..n {
                let theta = &control[k];
                let (head, tail) = state.split_at_mut(k + 1);
                rk4_step_into(
                    &mut |x: &StateVec, dx: &mut StateVec| drift.drift_into(x, theta, dx),
                    &head[k],
                    h,
                    &mut tail[0],
                    &mut rk4,
                )?;
            }
            rk4_steps += n as u64;
            if mfu_guard::state_diverged(state[n].as_slice(), DIVERGENCE_CAP) {
                return Err(CoreError::Diverged {
                    analysis: "pontryagin sweep",
                    time: horizon,
                });
            }
            let iterate_value = ascent.dot(&state[n]);
            if iterate_value > best_value {
                best_value = iterate_value;
                best_control = Some(control.clone());
            }

            // ---- backward pass ------------------------------------------------
            costate[n] = ascent.clone();
            for k in (0..n).rev() {
                let theta = &control[k];
                // Costate dynamics: -ṗ = Jᵀ p. Integrating backwards in time
                // with step -h is equivalent to integrating ṗ = Jᵀ p forward
                // in the reversed time variable. The Jacobian is frozen at
                // the interval midpoint, so it is evaluated once per
                // interval and shared by all four RK4 stages (the stages
                // previously recomputed the identical matrix); a failed
                // evaluation zeroes the matrix, preserving the historical
                // "treat a bad Jacobian as no costate motion" behaviour.
                half_sum_into(&state[k], &state[k + 1], &mut midpoint);
                let jacobian_ok = if self.options.batch_drift {
                    batched_jacobian_into(
                        drift,
                        theta,
                        &midpoint,
                        self.options.jacobian_step,
                        &mut jac,
                        &mut jac_batch,
                    )
                } else {
                    finite_difference_jacobian_into(
                        &mut |x: &StateVec, dx: &mut StateVec| drift.drift_into(x, theta, dx),
                        &midpoint,
                        self.options.jacobian_step,
                        &mut jac,
                        &mut jac_scratch,
                    )
                    .is_ok()
                };
                // A matrix the costate step cannot resolve (see
                // `MAX_COSTATE_STEP_GROWTH`) counts as a failed evaluation.
                if !jacobian_ok || jac.inf_norm() * h > MAX_COSTATE_STEP_GROWTH {
                    jac.fill_zero();
                }
                let jac_ref = &jac;
                let (head, tail) = costate.split_at_mut(k + 1);
                rk4_step_into(
                    &mut |p: &StateVec, dp: &mut StateVec| {
                        if jac_ref.transpose_mul_into(p, dp).is_err() {
                            dp.fill_zero();
                        }
                    },
                    &tail[0],
                    h,
                    &mut head[k],
                    &mut rk4,
                )?;
            }
            rk4_steps += n as u64;
            jacobian_evals += n as u64;

            // ---- control update ----------------------------------------------
            let mut control_change = 0.0_f64;
            for k in 0..n {
                half_sum_into(&costate[k], &costate[k + 1], &mut midpoint);
                let (theta_star, _) = drift.extremal_theta(&state[k], &midpoint);
                let mut updated = Vec::with_capacity(theta_dim);
                for j in 0..theta_dim {
                    let relaxed =
                        control[k][j] + self.options.relaxation * (theta_star[j] - control[k][j]);
                    updated.push(drift.params().intervals()[j].clamp(relaxed));
                }
                let change = updated
                    .iter()
                    .zip(control[k].iter())
                    .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
                control_change = control_change.max(change);
                control[k] = updated;
            }
            control[n] = control[n - 1].clone();

            let state_change = state[n].distance_inf(&previous_state_end);
            if control_change < self.options.tolerance
                && state_change < self.options.tolerance
                && iteration > 0
            {
                converged = true;
                break;
            }
        }

        // Report the best control encountered (the converged control when the
        // sweep converged, the best oscillation iterate otherwise) and rerun
        // the forward pass with it so state and control match exactly.
        if let Some(best) = best_control {
            let final_value = ascent.dot(&state[n]);
            if best_value > final_value {
                control = best;
            }
        }
        for k in 0..n {
            let theta = &control[k];
            let (head, tail) = state.split_at_mut(k + 1);
            rk4_step_into(
                &mut |x: &StateVec, dx: &mut StateVec| drift.drift_into(x, theta, dx),
                &head[k],
                h,
                &mut tail[0],
                &mut rk4,
            )?;
        }
        rk4_steps += n as u64;
        if mfu_guard::state_diverged(state[n].as_slice(), DIVERGENCE_CAP) {
            return Err(CoreError::Diverged {
                analysis: "pontryagin sweep",
                time: horizon,
            });
        }
        let objective_value = objective.weights().dot(&state[n]);

        let metrics = &self.obs.metrics;
        if metrics.is_enabled() {
            metrics.add(Counter::CoreRk4Steps, rk4_steps);
            metrics.add(Counter::CoreJacobianEvals, jacobian_evals);
            metrics.add(Counter::CorePontryaginSweeps, iterations as u64);
        }

        let control_values: Vec<StateVec> = control.into_iter().map(StateVec::from).collect();
        Ok(ExtremalSolution {
            objective,
            objective_value,
            state: GridSignal::new(grid.clone(), state)?,
            costate: GridSignal::new(grid.clone(), costate)?,
            control: GridSignal::new(grid, control_values)?,
            converged,
            iterations,
        })
    }
}

/// Reusable batch buffers of [`batched_jacobian_into`].
#[derive(Default)]
struct BatchedJacobianScratch {
    points: SoaBatch,
    drifts: SoaBatch,
    lane: Vec<f64>,
}

/// The batched twin of
/// [`finite_difference_jacobian_into`]: all `2·dim` perturbed states of the
/// central-difference stencil are evaluated in one
/// [`ImpreciseDrift::drift_batch_into`] pass (lane `2j` holds `x + h·e_j`,
/// lane `2j + 1` holds `x − h·e_j`), then the entries are formed with the
/// identical `(f⁺ − f⁻) / (2h)` arithmetic, so the resulting matrix is bit
/// for bit the scalar one. Returns `false` — the caller zeroes the matrix —
/// exactly when the scalar variant would have returned an error: an invalid
/// step or a non-finite entry.
fn batched_jacobian_into<D: ImpreciseDrift>(
    drift: &D,
    theta: &[f64],
    x: &StateVec,
    h: f64,
    jac: &mut Jacobian,
    scratch: &mut BatchedJacobianScratch,
) -> bool {
    if h <= 0.0 || !h.is_finite() {
        return false;
    }
    let n = x.dim();
    scratch.points.reset(n, 2 * n);
    scratch.lane.clear();
    scratch.lane.extend_from_slice(x.as_slice());
    for j in 0..n {
        let base = x[j];
        scratch.lane[j] = base + h;
        scratch.points.set_lane(2 * j, &scratch.lane);
        scratch.lane[j] = base - h;
        scratch.points.set_lane(2 * j + 1, &scratch.lane);
        scratch.lane[j] = base;
    }
    drift.drift_batch_into(
        &scratch.points,
        &BatchTheta::Shared(theta),
        &mut scratch.drifts,
    );
    for j in 0..n {
        for i in 0..n {
            let d = (scratch.drifts.get(i, 2 * j) - scratch.drifts.get(i, 2 * j + 1)) / (2.0 * h);
            if !d.is_finite() {
                return false;
            }
            jac.set_entry(i, j, d);
        }
    }
    true
}

/// Preallocated stage buffers of [`rk4_step_into`]: the four slopes plus
/// the perturbed stage state. One instance serves every step of a sweep.
#[derive(Debug, Clone)]
struct Rk4Scratch {
    k1: StateVec,
    k2: StateVec,
    k3: StateVec,
    k4: StateVec,
    stage: StateVec,
}

impl Rk4Scratch {
    fn new(dim: usize) -> Self {
        Rk4Scratch {
            k1: StateVec::zeros(dim),
            k2: StateVec::zeros(dim),
            k3: StateVec::zeros(dim),
            k4: StateVec::zeros(dim),
            stage: StateVec::zeros(dim),
        }
    }
}

/// One RK4 step of an autonomous vector field writing into a caller buffer.
///
/// All temporaries live in `scratch`; the step allocates nothing. The
/// arithmetic (stage states `x + c·h·k`, weighted final sum) reproduces the
/// former allocating implementation operation for operation.
fn rk4_step_into<F>(
    f: &mut F,
    x: &StateVec,
    h: f64,
    out: &mut StateVec,
    scratch: &mut Rk4Scratch,
) -> Result<()>
where
    F: FnMut(&StateVec, &mut StateVec),
{
    f(x, &mut scratch.k1);
    scratch.stage.copy_from(x);
    scratch.stage.add_scaled(0.5 * h, &scratch.k1);
    f(&scratch.stage, &mut scratch.k2);
    scratch.stage.copy_from(x);
    scratch.stage.add_scaled(0.5 * h, &scratch.k2);
    f(&scratch.stage, &mut scratch.k3);
    scratch.stage.copy_from(x);
    scratch.stage.add_scaled(h, &scratch.k3);
    f(&scratch.stage, &mut scratch.k4);
    out.copy_from(x);
    out.add_scaled(h / 6.0, &scratch.k1);
    out.add_scaled(h / 3.0, &scratch.k2);
    out.add_scaled(h / 3.0, &scratch.k3);
    out.add_scaled(h / 6.0, &scratch.k4);
    if !out.is_finite() {
        return Err(CoreError::Numerical(mfu_num::NumError::non_finite(
            "pontryagin RK4 step",
        )));
    }
    Ok(())
}

/// `out[i] = 0.5 * (a[i] + b[i])`, the midpoint used by the costate sweep
/// (same operation order as the former `0.5 * (&a + &b)` expression).
fn half_sum_into(a: &StateVec, b: &StateVec, out: &mut StateVec) {
    for ((o, &ai), &bi) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = 0.5 * (ai + bi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use mfu_ctmc::params::{Interval, ParamSpace};

    fn decay_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let theta = ParamSpace::single("rate", 1.0, 2.0).unwrap();
        FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0]
        })
    }

    fn solver() -> PontryaginSolver {
        PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 200,
            ..Default::default()
        })
    }

    #[test]
    fn scalar_decay_extremes_match_constant_controls() {
        // Monotone problem: the max of x(T) is attained by ϑ ≡ 1, the min by ϑ ≡ 2.
        let drift = decay_drift();
        let x0 = StateVec::from([1.0]);
        let (lo, hi) = solver().coordinate_extremes(&drift, &x0, 1.0, 0).unwrap();
        assert!((hi - (-1.0f64).exp()).abs() < 1e-4, "max {hi}");
        assert!((lo - (-2.0f64).exp()).abs() < 1e-4, "min {lo}");
        assert!(lo < hi);
    }

    #[test]
    fn extremal_control_is_constant_for_monotone_problems() {
        let drift = decay_drift();
        let x0 = StateVec::from([1.0]);
        let solution = solver().maximize_coordinate(&drift, &x0, 1.0, 0).unwrap();
        assert!(solution.converged());
        assert!(solution.iterations() >= 2);
        // the extremal control sits at ϑ = 1 everywhere (no switching)
        assert!(solution.switching_times(1e-9).is_empty());
        for value in solution.control().values() {
            assert!((value[0] - 1.0).abs() < 1e-9);
        }
        // terminal costate equals the objective weights
        let last = solution.costate().values().last().unwrap();
        assert!((last[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn objective_metadata_is_preserved() {
        let drift = decay_drift();
        let x0 = StateVec::from([1.0]);
        let solution = solver().minimize_coordinate(&drift, &x0, 0.5, 0).unwrap();
        assert!(!solution.objective().is_maximization());
        assert_eq!(solution.objective().weights().as_slice(), &[1.0]);
        assert!(solution.objective_value() > 0.0);
        let traj = solution.state_trajectory().unwrap();
        assert!((traj.last_time() - 0.5).abs() < 1e-12);
        assert!((traj.last_state()[0] - solution.objective_value()).abs() < 1e-12);
    }

    #[test]
    fn template_objectives_bound_linear_functionals() {
        // Two independent decays with different rate intervals; the maximum of
        // x0 + x1 at T uses the slowest rate for each.
        let theta = ParamSpace::new(vec![
            ("a", Interval::new(1.0, 2.0).unwrap()),
            ("b", Interval::new(0.5, 1.5).unwrap()),
        ])
        .unwrap();
        let drift = FnDrift::new(2, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0];
            dx[1] = -th[1] * x[1];
        });
        let x0 = StateVec::from([1.0, 1.0]);
        let solution = solver()
            .solve(
                &drift,
                &x0,
                1.0,
                LinearObjective::maximize(StateVec::from([1.0, 1.0])),
            )
            .unwrap();
        let expected = (-1.0f64).exp() + (-0.5f64).exp();
        assert!((solution.objective_value() - expected).abs() < 1e-4);
    }

    #[test]
    fn bang_bang_switching_for_non_monotone_objective() {
        // ẋ0 = ϑ, ẋ1 = -x0 with ϑ ∈ [-1, 1]; maximise x1(2).
        // Optimal control: push x0 as negative as possible late, i.e. a
        // bang-bang control; for this classic double-integrator-like problem
        // the optimum of x1(2) = -∫ x0 dt is attained with ϑ ≡ -1 (x0 becomes
        // negative immediately), so the control is constant at the vertex -1;
        // starting the sweep from the midpoint 0 must discover it.
        let theta = ParamSpace::single("u", -1.0, 1.0).unwrap();
        let drift = FnDrift::new(2, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0];
            dx[1] = -x[0];
        });
        let x0 = StateVec::from([0.0, 0.0]);
        let solution = solver().maximize_coordinate(&drift, &x0, 2.0, 1).unwrap();
        // value = -∫_0^2 x0(t) dt with x0(t) = -t  → value = ∫ t dt = 2
        assert!((solution.objective_value() - 2.0).abs() < 1e-3);
        for value in solution
            .control()
            .values()
            .iter()
            .take(solution.control().values().len() - 1)
        {
            assert!((value[0] + 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn genuinely_switching_problem_beats_constant_controls() {
        // ẋ0 = ϑ·(1 - x0), ẋ1 = ϑ·x0 - x1, maximise x1(T): early high ϑ builds
        // x0, but x1 also decays, so the best constant control is not optimal
        // in general. The sweep must do at least as well as every constant ϑ.
        let theta = ParamSpace::single("rate", 0.5, 3.0).unwrap();
        let drift = FnDrift::new(
            2,
            theta.clone(),
            |x: &StateVec, th: &[f64], dx: &mut StateVec| {
                dx[0] = th[0] * (1.0 - x[0]);
                dx[1] = th[0] * x[0] - x[1];
            },
        );
        let x0 = StateVec::from([0.0, 0.0]);
        let horizon = 2.0;
        let solution = solver()
            .maximize_coordinate(&drift, &x0, horizon, 1)
            .unwrap();

        let inclusion = crate::inclusion::DifferentialInclusion::new(&drift);
        for candidate in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
            let traj = inclusion
                .solve_constant(&[candidate], x0.clone(), horizon)
                .unwrap();
            assert!(
                solution.objective_value() >= traj.last_state()[1] - 1e-4,
                "constant ϑ = {candidate} beats the sweep"
            );
        }
    }

    #[test]
    fn input_validation() {
        let drift = decay_drift();
        let x0 = StateVec::from([1.0]);
        let s = solver();
        assert!(s
            .solve(
                &drift,
                &StateVec::from([1.0, 2.0]),
                1.0,
                LinearObjective::maximize_coordinate(1, 0)
            )
            .is_err());
        assert!(s
            .solve(
                &drift,
                &x0,
                -1.0,
                LinearObjective::maximize_coordinate(1, 0)
            )
            .is_err());
        assert!(s
            .solve(
                &drift,
                &x0,
                1.0,
                LinearObjective::maximize(StateVec::from([1.0, 0.0]))
            )
            .is_err());
        let bad = PontryaginSolver::new(PontryaginOptions {
            relaxation: 0.0,
            ..Default::default()
        });
        assert!(bad
            .solve(&drift, &x0, 1.0, LinearObjective::maximize_coordinate(1, 0))
            .is_err());
        assert_eq!(s.options().grid_intervals, 200);
    }

    #[test]
    fn batched_solve_is_bit_identical_to_scalar_solve() {
        // two-parameter switching problem: exercises the batched Jacobian on
        // every sweep iteration and a genuinely moving control
        let theta = ParamSpace::new(vec![
            ("a", Interval::new(0.5, 3.0).unwrap()),
            ("b", Interval::new(0.5, 1.5).unwrap()),
        ])
        .unwrap();
        let make_drift = || {
            FnDrift::new(
                2,
                theta.clone(),
                |x: &StateVec, th: &[f64], dx: &mut StateVec| {
                    dx[0] = th[0] * (1.0 - x[0]);
                    dx[1] = th[0] * x[0] - th[1] * x[1];
                },
            )
        };
        let x0 = StateVec::from([0.0, 0.0]);
        let solve_with = |batch_drift: bool, multi_start: bool| {
            PontryaginSolver::new(PontryaginOptions {
                grid_intervals: 60,
                multi_start,
                batch_drift,
                ..Default::default()
            })
            .maximize_coordinate(&make_drift(), &x0, 2.0, 1)
            .unwrap()
        };
        for multi_start in [false, true] {
            let scalar = solve_with(false, multi_start);
            let batched = solve_with(true, multi_start);
            assert_eq!(
                scalar.objective_value().to_bits(),
                batched.objective_value().to_bits(),
                "objective (multi_start = {multi_start})"
            );
            assert_eq!(scalar.iterations(), batched.iterations());
            assert_eq!(scalar.converged(), batched.converged());
            for (a, b) in scalar
                .state()
                .values()
                .iter()
                .chain(scalar.control().values())
                .chain(scalar.costate().values())
                .zip(
                    batched
                        .state()
                        .values()
                        .iter()
                        .chain(batched.control().values())
                        .chain(batched.costate().values()),
                )
            {
                for i in 0..a.dim() {
                    assert_eq!(a[i].to_bits(), b[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn batched_probes_match_scalar_escalation_and_counters() {
        // the stunted sweep from the escalation test: the vertex probes must
        // reach the same verdict, counters and final value with batching on
        let theta = ParamSpace::single("u", -1.0, 1.0).unwrap();
        let make_drift = || {
            FnDrift::new(
                1,
                theta.clone(),
                |_x: &StateVec, th: &[f64], dx: &mut StateVec| dx[0] = th[0],
            )
        };
        let x0 = StateVec::from([0.0]);
        let run = |batch_drift: bool| {
            let obs = Obs::with_metrics();
            let solution = PontryaginSolver::new(PontryaginOptions {
                grid_intervals: 50,
                max_iterations: 1,
                relaxation: 0.01,
                batch_drift,
                ..Default::default()
            })
            .with_obs(obs.clone())
            .maximize_coordinate(&make_drift(), &x0, 1.0, 0)
            .unwrap();
            (solution, obs.metrics.snapshot().unwrap())
        };
        let (scalar, scalar_metrics) = run(false);
        let (batched, batched_metrics) = run(true);
        assert_eq!(
            scalar.objective_value().to_bits(),
            batched.objective_value().to_bits()
        );
        for counter in [
            Counter::CorePontryaginEscalations,
            Counter::CorePontryaginRestarts,
            Counter::CoreRk4Steps,
            Counter::CoreJacobianEvals,
            Counter::CorePontryaginSweeps,
        ] {
            assert_eq!(
                scalar_metrics.counter(counter),
                batched_metrics.counter(counter),
                "{counter:?}"
            );
        }
    }

    #[test]
    fn solve_counters_satisfy_the_sweep_accounting() {
        // Per solve_from call over a grid of n intervals: every sweep does a
        // forward RK4 pass (n steps), n Jacobian evaluations and a backward
        // RK4 pass (n steps); the final replay adds one more forward pass.
        // Hence jacobian_evals == sweeps·n and
        // rk4_steps == 2·jacobian_evals + restarts·n.
        let drift = decay_drift();
        let x0 = StateVec::from([1.0]);
        let obs = Obs::with_metrics();
        let solver = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 200,
            multi_start: true,
            ..Default::default()
        })
        .with_obs(obs.clone());
        solver
            .solve(&drift, &x0, 1.0, LinearObjective::maximize_coordinate(1, 0))
            .unwrap();

        let snapshot = obs.metrics.snapshot().unwrap();
        let restarts = snapshot.counter(Counter::CorePontryaginRestarts);
        let sweeps = snapshot.counter(Counter::CorePontryaginSweeps);
        let jacobians = snapshot.counter(Counter::CoreJacobianEvals);
        let rk4 = snapshot.counter(Counter::CoreRk4Steps);
        // midpoint + both vertices of the single interval
        assert_eq!(restarts, 3);
        assert!(sweeps >= restarts, "each restart sweeps at least once");
        assert_eq!(jacobians, sweeps * 200);
        assert_eq!(rk4, 2 * jacobians + restarts * 200);
        let winner = snapshot
            .gauge(Gauge::CorePontryaginWinningRestart)
            .expect("winner gauge set");
        assert!(winner < restarts);
    }

    #[test]
    fn single_start_escalates_to_multi_start_on_suspicious_convergence() {
        // A deliberately stunted sweep (one iteration, heavy damping) stays
        // near the midpoint control ϑ ≈ 0 and reports x(1) ≈ 0; the vertex
        // probe ϑ ≡ 1 reaches 1.0, exposing the local extremal and forcing
        // the ladder to escalate to the multi-start procedure.
        let theta = ParamSpace::single("u", -1.0, 1.0).unwrap();
        let drift = FnDrift::new(1, theta, |_x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0]
        });
        let x0 = StateVec::from([0.0]);
        let obs = Obs::with_metrics();
        let stunted = PontryaginOptions {
            grid_intervals: 50,
            max_iterations: 1,
            relaxation: 0.01,
            ..Default::default()
        };
        let solution = PontryaginSolver::new(stunted)
            .with_obs(obs.clone())
            .maximize_coordinate(&drift, &x0, 1.0, 0)
            .unwrap();
        assert!((solution.objective_value() - 1.0).abs() < 1e-9);
        let snapshot = obs.metrics.snapshot().unwrap();
        assert_eq!(snapshot.counter(Counter::CorePontryaginEscalations), 1);
        // midpoint start plus the two escalated vertex restarts
        assert_eq!(snapshot.counter(Counter::CorePontryaginRestarts), 3);

        // with the ladder disabled the stunted sweep keeps its local value
        let disabled = PontryaginSolver::new(PontryaginOptions {
            auto_escalate: false,
            ..stunted
        });
        let stuck = disabled.maximize_coordinate(&drift, &x0, 1.0, 0).unwrap();
        assert!(stuck.objective_value() < 0.5);
    }

    #[test]
    fn healthy_single_start_does_not_escalate() {
        let drift = decay_drift();
        let obs = Obs::with_metrics();
        let solution = solver()
            .with_obs(obs.clone())
            .maximize_coordinate(&drift, &StateVec::from([1.0]), 1.0, 0)
            .unwrap();
        assert!((solution.objective_value() - (-1.0f64).exp()).abs() < 1e-4);
        let snapshot = obs.metrics.snapshot().unwrap();
        assert_eq!(snapshot.counter(Counter::CorePontryaginEscalations), 0);
        assert_eq!(snapshot.counter(Counter::CorePontryaginRestarts), 1);
    }

    #[test]
    fn sweep_budget_caps_iterations_gracefully() {
        let drift = decay_drift();
        let s = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 50,
            budget: RunBudget::unlimited().max_sweeps(1),
            auto_escalate: false,
            ..Default::default()
        });
        let solution = s
            .maximize_coordinate(&drift, &StateVec::from([1.0]), 1.0, 0)
            .unwrap();
        assert_eq!(solution.iterations(), 1);
        assert!(!solution.converged());
        assert!(solution.objective_value().is_finite());
    }

    #[test]
    fn expired_deadline_still_returns_a_feasible_bound() {
        let drift = decay_drift();
        let s = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 50,
            budget: RunBudget::unlimited().wall_clock(std::time::Duration::ZERO),
            auto_escalate: false,
            ..Default::default()
        });
        let solution = s
            .maximize_coordinate(&drift, &StateVec::from([1.0]), 1.0, 0)
            .unwrap();
        // no sweep ran, so the replayed midpoint control ϑ ≡ 1.5 is reported
        assert_eq!(solution.iterations(), 0);
        assert!(!solution.converged());
        assert!((solution.objective_value() - (-1.5f64).exp()).abs() < 1e-4);
    }

    #[test]
    fn divergent_forward_sweep_reports_a_typed_diagnosis() {
        let theta = ParamSpace::single("rate", 200.0, 300.0).unwrap();
        let drift = FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0] * x[0]
        });
        let s = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 50,
            auto_escalate: false,
            ..Default::default()
        });
        let err = s
            .maximize_coordinate(&drift, &StateVec::from([1.0]), 3.0, 0)
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::Diverged {
                analysis: "pontryagin sweep",
                ..
            }
        ));
    }

    #[test]
    fn replaying_the_extremal_control_reproduces_the_objective() {
        let drift = decay_drift();
        let x0 = StateVec::from([1.0]);
        let solution = solver().maximize_coordinate(&drift, &x0, 1.0, 0).unwrap();
        let inclusion = crate::inclusion::DifferentialInclusion::new(&drift);
        let replay = inclusion
            .solve_fixed_step(&solution.control_signal(), x0, 1.0, 1e-3)
            .unwrap();
        assert!((replay.last_state()[0] - solution.objective_value()).abs() < 1e-4);
    }
}
