//! Template-polyhedron refinement of reachable sets (Section IV-C, remark).
//!
//! The per-coordinate Pontryagin bounds describe the reachable set of the
//! mean-field inclusion at time `T` only up to a bounding rectangle. The
//! paper notes that the same sweep applied to arbitrary linear functionals
//! `α·x(T)` refines the rectangle into any convex template polyhedron. This
//! module implements the two-dimensional version: the support function of
//! the reachable set is evaluated in `K` evenly spaced directions and the
//! corresponding support lines are intersected into a convex polygon that
//! contains the reachable set (and converges to its convex hull as `K`
//! grows).

use mfu_num::geometry::{convex_hull, Point2, Polygon};
use mfu_num::StateVec;

use crate::drift::ImpreciseDrift;
use crate::pontryagin::{LinearObjective, PontryaginOptions, PontryaginSolver};
use crate::{CoreError, Result};

/// Options of the template-polyhedron construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateOptions {
    /// Number of template directions (evenly spaced on the unit circle).
    pub directions: usize,
    /// Options of the per-direction Pontryagin sweeps.
    pub pontryagin: PontryaginOptions,
}

impl Default for TemplateOptions {
    fn default() -> Self {
        TemplateOptions {
            directions: 16,
            // multi-start costs one extra sweep per Θ vertex and protects the
            // support values against local extremals in oblique directions
            pontryagin: PontryaginOptions {
                grid_intervals: 200,
                multi_start: true,
                ..Default::default()
            },
        }
    }
}

/// A convex over-approximation of the reachable set at a fixed time,
/// described by its support values and the induced polygon.
#[derive(Debug, Clone)]
pub struct ReachablePolygon {
    horizon: f64,
    directions: Vec<Point2>,
    support: Vec<f64>,
    polygon: Polygon,
}

impl ReachablePolygon {
    /// The horizon at which the set was computed.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The template directions used.
    pub fn directions(&self) -> &[Point2] {
        &self.directions
    }

    /// The support value `max { α·x(T) }` for each template direction.
    pub fn support(&self) -> &[f64] {
        &self.support
    }

    /// The polygon obtained by intersecting the support half-planes.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// Returns `true` when the (two-dimensional) state satisfies every
    /// support constraint up to a slack of `10⁻³` per constraint.
    ///
    /// The slack covers the numerical accuracy of the support values: each is
    /// a forward–backward sweep on a finite grid, so the bang-bang switching
    /// instants — and with them the support — are only resolved up to the
    /// grid step. Use [`ReachablePolygon::contains_state_within`] to choose a
    /// different slack.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not have exactly two coordinates.
    pub fn contains_state(&self, state: &StateVec) -> bool {
        self.contains_state_within(state, 1e-3)
    }

    /// Returns `true` when the state satisfies every support constraint up to
    /// `slack`.
    ///
    /// # Panics
    ///
    /// Panics if `state` does not have exactly two coordinates.
    pub fn contains_state_within(&self, state: &StateVec, slack: f64) -> bool {
        assert_eq!(state.dim(), 2, "template containment requires a 2-D state");
        self.directions
            .iter()
            .zip(self.support.iter())
            .all(|(alpha, &h)| alpha.x * state[0] + alpha.y * state[1] <= h + slack)
    }

    /// The bounding rectangle implied by the axis-aligned template directions
    /// (the rectangle the paper's per-coordinate bounds would give).
    pub fn bounding_box(&self) -> (Point2, Point2) {
        self.polygon.bounding_box()
    }
}

/// Computes a convex polygon containing the reachable set of a
/// two-dimensional imprecise drift at time `horizon`.
///
/// One Pontryagin sweep is run per template direction, so the cost is
/// `directions` times that of a single sweep.
///
/// # Errors
///
/// Returns [`CoreError::UnsupportedDimension`] for drifts that are not
/// two-dimensional, and propagates sweep failures.
pub fn reachable_polygon_2d<D: ImpreciseDrift + Sync>(
    drift: &D,
    x0: &StateVec,
    horizon: f64,
    options: &TemplateOptions,
) -> Result<ReachablePolygon> {
    if drift.dim() != 2 {
        return Err(CoreError::UnsupportedDimension {
            required: 2,
            found: drift.dim(),
        });
    }
    if options.directions < 3 {
        return Err(CoreError::invalid_input(
            "at least three template directions are required",
        ));
    }
    let solver = PontryaginSolver::new(options.pontryagin);

    let mut directions = Vec::with_capacity(options.directions);
    let mut support = Vec::with_capacity(options.directions);
    for k in 0..options.directions {
        let angle = 2.0 * std::f64::consts::PI * k as f64 / options.directions as f64;
        let alpha = Point2::new(angle.cos(), angle.sin());
        let objective = LinearObjective::maximize(StateVec::from([alpha.x, alpha.y]));
        let solution = solver.solve(drift, x0, horizon, objective)?;
        directions.push(alpha);
        support.push(solution.objective_value());
    }

    // Intersect adjacent support lines to obtain the polygon vertices. With
    // evenly spaced directions adjacent lines are never parallel.
    let mut vertices = Vec::with_capacity(options.directions);
    for k in 0..options.directions {
        let a1 = directions[k];
        let h1 = support[k];
        let a2 = directions[(k + 1) % options.directions];
        let h2 = support[(k + 1) % options.directions];
        let det = a1.x * a2.y - a1.y * a2.x;
        if det.abs() < 1e-12 {
            continue;
        }
        let x = (h1 * a2.y - h2 * a1.y) / det;
        let y = (a1.x * h2 - a2.x * h1) / det;
        vertices.push(Point2::new(x, y));
    }
    let polygon = convex_hull(&vertices).or_else(|_| {
        // Degenerate reachable set (e.g. a precise model): fall back to a tiny
        // triangle around the unique reachable point so the polygon stays valid.
        let centre = vertices
            .first()
            .copied()
            .unwrap_or(Point2::new(x0[0], x0[1]));
        let eps = 1e-9;
        Polygon::new(vec![
            Point2::new(centre.x - eps, centre.y - eps),
            Point2::new(centre.x + eps, centre.y - eps),
            Point2::new(centre.x, centre.y + eps),
        ])
        .map_err(CoreError::from)
    })?;

    Ok(ReachablePolygon {
        horizon,
        directions,
        support,
        polygon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use crate::inclusion::DifferentialInclusion;
    use crate::signal::PiecewiseSignal;
    use mfu_ctmc::params::ParamSpace;

    fn decoupled_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        // ẋ0 = -ϑ x0, ẋ1 = ϑ - x1 with ϑ ∈ [0.5, 1.5]
        let params = ParamSpace::single("theta", 0.5, 1.5).unwrap();
        FnDrift::new(2, params, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0];
            dx[1] = th[0] - x[1];
        })
    }

    fn fast_options(directions: usize) -> TemplateOptions {
        TemplateOptions {
            directions,
            pontryagin: PontryaginOptions {
                grid_intervals: 80,
                multi_start: true,
                ..Default::default()
            },
        }
    }

    #[test]
    fn polygon_contains_constant_and_switching_selections() {
        let drift = decoupled_drift();
        let x0 = StateVec::from([1.0, 0.0]);
        let horizon = 1.5;
        let reachable = reachable_polygon_2d(&drift, &x0, horizon, &fast_options(12)).unwrap();
        assert_eq!(reachable.directions().len(), 12);
        assert!((reachable.horizon() - horizon).abs() < 1e-12);

        let inclusion = DifferentialInclusion::new(&drift);
        for theta in [0.5, 1.0, 1.5] {
            let end = inclusion
                .solve_constant(&[theta], x0.clone(), horizon)
                .unwrap();
            assert!(
                reachable.contains_state(end.last_state()),
                "constant ϑ = {theta} escapes the template polygon"
            );
        }
        // A switching selection whose endpoint sits essentially on the
        // boundary of the reachable set: containment holds up to the support
        // accuracy, which is limited by the sweep's time-grid resolution.
        let signal = PiecewiseSignal::new(vec![0.7], vec![vec![1.5], vec![0.5]]);
        let end = inclusion
            .solve_fixed_step(&signal, x0, horizon, 1e-3)
            .unwrap();
        assert!(reachable.contains_state_within(end.last_state(), 5e-3));
    }

    #[test]
    fn more_directions_refine_the_polygon() {
        let drift = decoupled_drift();
        let x0 = StateVec::from([1.0, 0.0]);
        let coarse = reachable_polygon_2d(&drift, &x0, 1.0, &fast_options(4)).unwrap();
        let fine = reachable_polygon_2d(&drift, &x0, 1.0, &fast_options(24)).unwrap();
        assert!(fine.polygon().area() <= coarse.polygon().area() + 1e-9);
    }

    #[test]
    fn template_box_matches_coordinate_extremes() {
        let drift = decoupled_drift();
        let x0 = StateVec::from([1.0, 0.0]);
        let horizon = 1.0;
        let reachable = reachable_polygon_2d(&drift, &x0, horizon, &fast_options(16)).unwrap();
        let solver = PontryaginSolver::new(PontryaginOptions {
            grid_intervals: 80,
            ..Default::default()
        });
        let (lo, hi) = solver.coordinate_extremes(&drift, &x0, horizon, 0).unwrap();
        let (bb_lo, bb_hi) = reachable.bounding_box();
        // with 16 directions the axis-aligned supports are included, so the
        // bounding box matches the per-coordinate extremes closely
        assert!((bb_lo.x - lo).abs() < 5e-3);
        assert!((bb_hi.x - hi).abs() < 5e-3);
    }

    #[test]
    fn input_validation() {
        let drift = decoupled_drift();
        let x0 = StateVec::from([1.0, 0.0]);
        assert!(reachable_polygon_2d(&drift, &x0, 1.0, &fast_options(2)).is_err());
        let params = ParamSpace::single("theta", 0.0, 1.0).unwrap();
        let one_d = FnDrift::new(
            1,
            params,
            |_x: &StateVec, _th: &[f64], dx: &mut StateVec| dx[0] = 0.0,
        );
        assert!(matches!(
            reachable_polygon_2d(&one_d, &StateVec::from([0.0]), 1.0, &fast_options(8)),
            Err(CoreError::UnsupportedDimension { .. })
        ));
    }
}
