//! Mean-field approximation of uncertain and imprecise stochastic models.
//!
//! This crate is the core of the reproduction of Bortolussi & Gast, *Mean
//! Field Approximation of Uncertain Stochastic Models* (DSN 2016). It builds
//! on the modelling substrate of [`mfu_ctmc`] and the numerical substrate of
//! [`mfu_num`] and provides the analyses the paper develops:
//!
//! * [`drift`] — the *imprecise drift* `f(x, ϑ)` (Definition 3) as a trait,
//!   with adapters for population models and plain closures;
//! * [`signal`] — deterministic parameter signals `ϑ(t)` used to select
//!   solutions of the differential inclusion;
//! * [`inclusion`] — the mean-field differential inclusion
//!   `ẋ ∈ F(x) = {f(x, ϑ) : ϑ ∈ Θ}` (Theorem 1) and its solutions under
//!   parameter signals;
//! * [`uncertain`] — the uncertain scenario (Corollary 1): parameter sweeps,
//!   envelopes over constant `ϑ`, and per-`ϑ` fixed points;
//! * [`hull`] — the differential-hull over-approximation (Section IV-B,
//!   Theorem 4);
//! * [`pontryagin`] — transient bounds via Pontryagin's maximum principle
//!   (Section IV-C): forward–backward sweeps, extremal bang-bang controls and
//!   linear templates;
//! * [`reachability`] — reach tubes `[x_i^min(t), x_i^max(t)]` over a time
//!   grid, combining the Pontryagin sweeps;
//! * [`templates`] — template-polyhedron refinement of the reachable set at a
//!   fixed time (the convex-polygon extension discussed in Section IV-C);
//! * [`asymptotic`] — boxes containing the asymptotic reachable set `A_F`
//!   (Theorem 2);
//! * [`birkhoff`] — the Birkhoff-centre construction for two-dimensional
//!   systems (Section V-C) used for the steady-state analysis (Theorems 2–3);
//! * [`robust`] — robust tuning of design parameters against worst-case
//!   imprecise behaviour (Section VI-C).
//!
//! Two infrastructure modules round the analyses out: [`artifact`] defines
//! the serializable [`artifact::BoundArtifact`] every bounding method can
//! produce (the shared currency of the CLI, the `mfu-serve` caches and the
//! benches), and [`json`] is the workspace's hand-rolled JSON
//! reader/writer backing it (the vendored `serde` is a no-op stub).
//!
//! # Quick start
//!
//! Bound the transient behaviour of a one-dimensional imprecise model:
//!
//! ```
//! use mfu_core::drift::FnDrift;
//! use mfu_core::pontryagin::{PontryaginOptions, PontryaginSolver};
//! use mfu_ctmc::params::ParamSpace;
//! use mfu_num::StateVec;
//!
//! // ẋ = -ϑ x with ϑ ∈ [1, 2]: at time 1 the reachable interval is
//! // [e^{-2}, e^{-1}] (attained by the constant extreme controls).
//! let theta = ParamSpace::single("rate", 1.0, 2.0)?;
//! let drift = FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
//!     dx[0] = -th[0] * x[0];
//! });
//! let solver = PontryaginSolver::new(PontryaginOptions::default());
//! let x0 = StateVec::from(vec![1.0]);
//! let hi = solver.maximize_coordinate(&drift, &x0, 1.0, 0)?;
//! let lo = solver.minimize_coordinate(&drift, &x0, 1.0, 0)?;
//! assert!((hi.objective_value() - (-1.0f64).exp()).abs() < 1e-3);
//! assert!((lo.objective_value() - (-2.0f64).exp()).abs() < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod error;

pub mod artifact;
pub mod asymptotic;
pub mod birkhoff;
pub mod drift;
pub mod hull;
pub mod inclusion;
pub mod json;
pub mod pontryagin;
pub mod reachability;
pub mod robust;
pub mod signal;
pub mod templates;
pub mod uncertain;

pub use error::CoreError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
