//! Robust tuning of design parameters against worst-case imprecision.
//!
//! Section VI-C of the paper tunes the GPS weights `φ_1/φ_2` so that the
//! *worst-case* total queue length — the maximum over all admissible
//! parameter signals, computed with the Pontryagin sweep — is minimised.
//! This module provides that outer minimisation: the caller supplies a
//! *worst-case objective* as a function of the scalar design parameter
//! (typically wrapping [`PontryaginSolver`]
//! on a model rebuilt for each candidate design), and the optimiser searches
//! the design range, optionally exploiting unimodality.

use mfu_num::rootfind::{golden_section_min, grid_min, SolverOptions};

use crate::drift::ImpreciseDrift;
use crate::pontryagin::{LinearObjective, PontryaginOptions, PontryaginSolver};
use crate::{CoreError, Result};
use mfu_num::StateVec;

/// Options of the robust-design search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustOptions {
    /// Number of coarse grid evaluations used to bracket the optimum.
    pub coarse_grid: usize,
    /// Tolerance on the design parameter for the golden-section refinement.
    pub design_tolerance: f64,
    /// Maximum number of golden-section iterations.
    pub max_iterations: usize,
    /// When `true`, skip the golden-section refinement and return the best
    /// grid point (useful for non-unimodal objectives).
    pub grid_only: bool,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            coarse_grid: 12,
            design_tolerance: 1e-3,
            max_iterations: 200,
            grid_only: false,
        }
    }
}

/// The outcome of a robust-design search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustDesign {
    /// The minimising design value.
    pub design: f64,
    /// The worst-case objective at the minimiser.
    pub worst_case: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Minimises a worst-case objective over a scalar design range.
///
/// The objective is evaluated on a coarse grid to bracket the optimum, then
/// refined by golden-section search around the best grid point (assuming
/// local unimodality, which holds for the convex objective of the paper's
/// GPS example).
///
/// # Errors
///
/// Returns an error if the range is invalid, an objective evaluation fails,
/// or the refinement fails to converge.
///
/// # Example
///
/// ```
/// use mfu_core::robust::{minimize_worst_case, RobustOptions};
///
/// let result = minimize_worst_case(1.0, 5.0, &RobustOptions::default(), |phi| Ok((phi - 3.0) * (phi - 3.0)))?;
/// assert!((result.design - 3.0).abs() < 1e-2);
/// # Ok::<(), mfu_core::CoreError>(())
/// ```
pub fn minimize_worst_case<F>(
    lo: f64,
    hi: f64,
    options: &RobustOptions,
    mut objective: F,
) -> Result<RobustDesign>
where
    F: FnMut(f64) -> Result<f64>,
{
    if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
        return Err(CoreError::invalid_input(format!(
            "invalid design range [{lo}, {hi}]"
        )));
    }
    if options.coarse_grid == 0 {
        return Err(CoreError::invalid_input(
            "coarse grid needs at least one interval",
        ));
    }

    let mut evaluations = 0usize;
    let mut failure: Option<CoreError> = None;
    // Coarse scan. Failed evaluations are recorded and reported afterwards.
    let coarse = grid_min(
        |x| {
            evaluations += 1;
            match objective(x) {
                Ok(v) => v,
                Err(err) => {
                    if failure.is_none() {
                        failure = Some(err);
                    }
                    f64::INFINITY
                }
            }
        },
        lo,
        hi,
        options.coarse_grid,
    )?;
    if let Some(err) = failure {
        return Err(err);
    }
    if options.grid_only {
        return Ok(RobustDesign {
            design: coarse.0,
            worst_case: coarse.1,
            evaluations,
        });
    }

    // Refine around the best grid point (one grid cell on each side).
    let cell = (hi - lo) / options.coarse_grid as f64;
    let refine_lo = (coarse.0 - cell).max(lo);
    let refine_hi = (coarse.0 + cell).min(hi);
    let solver_options = SolverOptions {
        x_tolerance: options.design_tolerance,
        max_iterations: options.max_iterations,
        ..SolverOptions::default()
    };
    let mut failure: Option<CoreError> = None;
    let refined = golden_section_min(
        |x| {
            evaluations += 1;
            match objective(x) {
                Ok(v) => v,
                Err(err) => {
                    if failure.is_none() {
                        failure = Some(err);
                    }
                    f64::INFINITY
                }
            }
        },
        refine_lo,
        refine_hi,
        &solver_options,
    )
    .map_err(CoreError::from)?;
    if let Some(err) = failure {
        return Err(err);
    }
    let (design, worst_case) = if refined.1 <= coarse.1 {
        refined
    } else {
        coarse
    };
    Ok(RobustDesign {
        design,
        worst_case,
        evaluations,
    })
}

/// Convenience wrapper: minimises, over a scalar design parameter, the
/// worst-case value of a linear functional of the mean field at a fixed
/// horizon.
///
/// `make_drift` rebuilds the imprecise drift for a candidate design value;
/// `objective` is maximised by the inner Pontryagin sweep (the adversary) and
/// minimised by the outer design search.
///
/// # Errors
///
/// Propagates errors from the inner sweeps and the outer search.
#[allow(clippy::too_many_arguments)] // mirrors the problem statement: box, horizon, objective, two option sets
pub fn robust_design_sweep<D, F>(
    lo: f64,
    hi: f64,
    x0: &StateVec,
    horizon: f64,
    objective: LinearObjective,
    pontryagin: &PontryaginOptions,
    robust: &RobustOptions,
    mut make_drift: F,
) -> Result<RobustDesign>
where
    D: ImpreciseDrift + Sync,
    F: FnMut(f64) -> Result<D>,
{
    let solver = PontryaginSolver::new(*pontryagin);
    minimize_worst_case(lo, hi, robust, |design| {
        let drift = make_drift(design)?;
        let solution = solver.solve(&drift, x0, horizon, objective.clone())?;
        Ok(solution.objective_value())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use mfu_ctmc::params::ParamSpace;

    #[test]
    fn minimizes_a_convex_objective() {
        let result = minimize_worst_case(0.0, 10.0, &RobustOptions::default(), |x| {
            Ok((x - 7.0).powi(2) + 1.0)
        })
        .unwrap();
        assert!((result.design - 7.0).abs() < 1e-2);
        assert!((result.worst_case - 1.0).abs() < 1e-3);
        assert!(result.evaluations > 10);
    }

    #[test]
    fn grid_only_mode_skips_refinement() {
        let options = RobustOptions {
            coarse_grid: 10,
            grid_only: true,
            ..Default::default()
        };
        let result = minimize_worst_case(0.0, 1.0, &options, |x| Ok((x - 0.33).abs())).unwrap();
        assert!((result.design - 0.3).abs() < 0.11);
        assert_eq!(result.evaluations, 11);
    }

    #[test]
    fn propagates_objective_errors() {
        let res = minimize_worst_case(0.0, 1.0, &RobustOptions::default(), |_x| {
            Err(CoreError::invalid_input("inner failure"))
        });
        assert!(res.is_err());
    }

    #[test]
    fn validates_range() {
        assert!(minimize_worst_case(1.0, 1.0, &RobustOptions::default(), Ok).is_err());
        assert!(minimize_worst_case(f64::NAN, 1.0, &RobustOptions::default(), Ok).is_err());
        let bad = RobustOptions {
            coarse_grid: 0,
            ..Default::default()
        };
        assert!(minimize_worst_case(0.0, 1.0, &bad, Ok).is_err());
    }

    #[test]
    fn robust_sweep_balances_two_decay_rates() {
        // Design parameter w ∈ [0.1, 0.9] splits a fixed service capacity
        // between two queues: queue 0 drains at rate w, queue 1 at rate 1 - w.
        // Arrivals are imprecise in [0.5, 1]. The worst-case total backlog at
        // T is minimised near w = 0.5 by symmetry.
        let pontryagin = PontryaginOptions {
            grid_intervals: 60,
            ..Default::default()
        };
        let robust = RobustOptions {
            coarse_grid: 8,
            design_tolerance: 1e-2,
            ..Default::default()
        };
        let x0 = StateVec::from([0.5, 0.5]);
        let result = robust_design_sweep(
            0.1,
            0.9,
            &x0,
            2.0,
            LinearObjective::maximize(StateVec::from([1.0, 1.0])),
            &pontryagin,
            &robust,
            |w| {
                let theta = ParamSpace::single("arrival", 0.5, 1.0)?;
                Ok(FnDrift::new(
                    2,
                    theta,
                    move |x: &StateVec, th: &[f64], dx: &mut StateVec| {
                        dx[0] = th[0] - w * x[0];
                        dx[1] = th[0] - (1.0 - w) * x[1];
                    },
                ))
            },
        )
        .unwrap();
        assert!(
            (result.design - 0.5).abs() < 0.1,
            "design {}",
            result.design
        );
    }
}
