//! The asymptotic reachable set `A_F` (Section III-C, Theorem 2).
//!
//! Theorem 2 states that, in the long run, the imprecise population process
//! stays close to the asymptotic reachable set `A_F` — the set of points that
//! solutions of the mean-field inclusion keep visiting at arbitrarily late
//! times. The paper suggests computing a convex over-approximation of `A_F`
//! by letting the horizon of the (Pontryagin) reachable-set computation grow.
//! This module implements that procedure per coordinate: the per-coordinate
//! reachable interval is computed at a sequence of growing horizons and the
//! iteration stops once it stabilises, giving a box containing `A_F` as seen
//! from the given initial condition.

use mfu_num::StateVec;

use crate::drift::ImpreciseDrift;
use crate::pontryagin::{PontryaginOptions, PontryaginSolver};
use crate::{CoreError, Result};

/// Options of the asymptotic-box computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsymptoticOptions {
    /// First horizon probed.
    pub initial_horizon: f64,
    /// Multiplicative factor between successive horizons.
    pub growth_factor: f64,
    /// Maximum number of horizon doublings.
    pub max_rounds: usize,
    /// The iteration stops when no bound moves by more than this amount
    /// between two successive horizons.
    pub tolerance: f64,
    /// Options of the per-horizon Pontryagin sweeps.
    pub pontryagin: PontryaginOptions,
}

impl Default for AsymptoticOptions {
    fn default() -> Self {
        AsymptoticOptions {
            initial_horizon: 5.0,
            growth_factor: 2.0,
            max_rounds: 6,
            tolerance: 1e-3,
            pontryagin: PontryaginOptions {
                grid_intervals: 200,
                ..Default::default()
            },
        }
    }
}

/// A per-coordinate box containing the asymptotic reachable set `A_F`.
#[derive(Debug, Clone, PartialEq)]
pub struct AsymptoticBox {
    lower: StateVec,
    upper: StateVec,
    horizon: f64,
    converged: bool,
}

impl AsymptoticBox {
    /// Per-coordinate lower bounds.
    pub fn lower(&self) -> &StateVec {
        &self.lower
    }

    /// Per-coordinate upper bounds.
    pub fn upper(&self) -> &StateVec {
        &self.upper
    }

    /// The largest horizon that was probed.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Whether the bounds stabilised before the round budget ran out.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Returns `true` when `state` lies inside the box (up to `tolerance`).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn contains(&self, state: &StateVec, tolerance: f64) -> bool {
        (0..state.dim())
            .all(|i| state[i] >= self.lower[i] - tolerance && state[i] <= self.upper[i] + tolerance)
    }

    /// Per-coordinate widths of the box.
    pub fn widths(&self) -> StateVec {
        &self.upper - &self.lower
    }
}

/// Computes a box containing the asymptotic reachable set of the inclusion
/// started from `x0`, by growing the reachability horizon until the
/// per-coordinate bounds stabilise.
///
/// # Errors
///
/// Returns an error on invalid options or if a Pontryagin sweep fails. A
/// failure to stabilise within the round budget is *not* an error; the
/// returned box reports `converged() == false`.
pub fn asymptotic_box<D: ImpreciseDrift + Sync>(
    drift: &D,
    x0: &StateVec,
    options: &AsymptoticOptions,
) -> Result<AsymptoticBox> {
    if options.initial_horizon.is_nan()
        || options.initial_horizon <= 0.0
        || options.growth_factor.is_nan()
        || options.growth_factor <= 1.0
    {
        return Err(CoreError::invalid_input(
            "asymptotic options need a positive initial horizon and a growth factor above 1",
        ));
    }
    let dim = drift.dim();
    let solver = PontryaginSolver::new(options.pontryagin);

    let mut horizon = options.initial_horizon;
    let mut lower = StateVec::zeros(dim);
    let mut upper = StateVec::zeros(dim);
    let mut converged = false;

    for round in 0..options.max_rounds.max(1) {
        let mut new_lower = StateVec::zeros(dim);
        let mut new_upper = StateVec::zeros(dim);
        for coordinate in 0..dim {
            let (lo, hi) = solver.coordinate_extremes(drift, x0, horizon, coordinate)?;
            new_lower[coordinate] = lo;
            new_upper[coordinate] = hi;
        }
        if round > 0 {
            let movement = new_lower
                .distance_inf(&lower)
                .max(new_upper.distance_inf(&upper));
            if movement < options.tolerance {
                lower = new_lower;
                upper = new_upper;
                converged = true;
                break;
            }
        }
        lower = new_lower;
        upper = new_upper;
        horizon *= options.growth_factor;
    }
    Ok(AsymptoticBox {
        lower,
        upper,
        horizon,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use mfu_ctmc::params::ParamSpace;

    /// ẋ = ϑ - x with ϑ ∈ [0.3, 0.7]: every solution ends up oscillating in
    /// [0.3, 0.7], which is exactly the asymptotic reachable set.
    fn relaxation_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let params = ParamSpace::single("target", 0.3, 0.7).unwrap();
        FnDrift::new(1, params, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = th[0] - x[0]
        })
    }

    fn fast_options() -> AsymptoticOptions {
        AsymptoticOptions {
            initial_horizon: 3.0,
            max_rounds: 5,
            pontryagin: PontryaginOptions {
                grid_intervals: 80,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn relaxation_box_converges_to_the_parameter_interval() {
        let drift = relaxation_drift();
        let result = asymptotic_box(&drift, &StateVec::from([0.0]), &fast_options()).unwrap();
        assert!(result.converged());
        assert!(
            (result.lower()[0] - 0.3).abs() < 0.02,
            "lower {:?}",
            result.lower()
        );
        assert!(
            (result.upper()[0] - 0.7).abs() < 0.02,
            "upper {:?}",
            result.upper()
        );
        assert!(result.contains(&StateVec::from([0.5]), 1e-9));
        assert!(!result.contains(&StateVec::from([0.9]), 1e-3));
        assert!(result.widths()[0] > 0.3);
    }

    #[test]
    fn starting_inside_the_set_gives_the_same_box() {
        let drift = relaxation_drift();
        let from_below = asymptotic_box(&drift, &StateVec::from([0.0]), &fast_options()).unwrap();
        let from_inside = asymptotic_box(&drift, &StateVec::from([0.5]), &fast_options()).unwrap();
        assert!((from_below.lower()[0] - from_inside.lower()[0]).abs() < 0.02);
        assert!((from_below.upper()[0] - from_inside.upper()[0]).abs() < 0.02);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let drift = relaxation_drift();
        let bad = AsymptoticOptions {
            initial_horizon: 0.0,
            ..fast_options()
        };
        assert!(asymptotic_box(&drift, &StateVec::from([0.0]), &bad).is_err());
        let bad = AsymptoticOptions {
            growth_factor: 1.0,
            ..fast_options()
        };
        assert!(asymptotic_box(&drift, &StateVec::from([0.0]), &bad).is_err());
    }
}
