//! The mean-field differential inclusion `ẋ ∈ F(x)` (Theorem 1).
//!
//! The inclusion is represented in parametrised form: its right-hand side set
//! is `F(x) = {f(x, ϑ) : ϑ ∈ Θ}` for an [`ImpreciseDrift`]. Individual
//! solutions are obtained by fixing a measurable parameter signal `ϑ(t)` and
//! integrating the resulting non-autonomous ODE; the analyses in the sibling
//! modules ([`hull`](crate::hull), [`pontryagin`](crate::pontryagin),
//! [`birkhoff`](crate::birkhoff)) characterise the whole solution set without
//! enumerating signals.

use mfu_num::ode::{Dopri45, Integrator, OdeSystem, Rk4, Trajectory};
use mfu_num::StateVec;

use crate::drift::ImpreciseDrift;
use crate::signal::{ConstantSignal, ParamSignal};
use crate::{CoreError, Result};

/// The mean-field differential inclusion of an imprecise model.
///
/// # Example
///
/// ```
/// use mfu_core::drift::FnDrift;
/// use mfu_core::inclusion::DifferentialInclusion;
/// use mfu_core::signal::PiecewiseSignal;
/// use mfu_ctmc::params::ParamSpace;
/// use mfu_num::StateVec;
///
/// let theta = ParamSpace::single("rate", 1.0, 2.0)?;
/// let drift = FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
///     dx[0] = -th[0] * x[0];
/// });
/// let inclusion = DifferentialInclusion::new(&drift);
///
/// // a bang-bang selection: slow decay until t = 0.5, fast decay afterwards
/// let signal = PiecewiseSignal::new(vec![0.5], vec![vec![1.0], vec![2.0]]);
/// let traj = inclusion.solve(&signal, StateVec::from(vec![1.0]), 1.0)?;
/// let expected = (-0.5f64).exp() * (-1.0f64).exp();
/// assert!((traj.last_state()[0] - expected).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DifferentialInclusion<D> {
    drift: D,
}

impl<D: ImpreciseDrift> DifferentialInclusion<D> {
    /// Wraps an imprecise drift.
    pub fn new(drift: D) -> Self {
        DifferentialInclusion { drift }
    }

    /// The underlying drift.
    pub fn drift(&self) -> &D {
        &self.drift
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.drift.dim()
    }

    /// Integrates the selection of the inclusion induced by `signal` from
    /// `x0` over `[0, t_end]` with the adaptive default solver.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial condition has the wrong dimension, the
    /// signal leaves `Θ`, or integration fails.
    pub fn solve<S: ParamSignal>(
        &self,
        signal: &S,
        x0: StateVec,
        t_end: f64,
    ) -> Result<Trajectory> {
        self.check_x0(&x0)?;
        let system = SelectionOde {
            drift: &self.drift,
            signal,
        };
        self.validate_signal(signal, t_end)?;
        Dopri45::default()
            .max_step((t_end / 200.0).max(1e-3))
            .integrate(&system, 0.0, x0, t_end)
            .map_err(CoreError::from)
    }

    /// Integrates the selection with a fixed-step RK4 solver.
    ///
    /// Piecewise-constant signals make the right-hand side discontinuous in
    /// time; the fixed-step solver avoids the step-rejection chatter an
    /// adaptive scheme can exhibit near switching instants.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DifferentialInclusion::solve`].
    pub fn solve_fixed_step<S: ParamSignal>(
        &self,
        signal: &S,
        x0: StateVec,
        t_end: f64,
        step: f64,
    ) -> Result<Trajectory> {
        self.check_x0(&x0)?;
        if step <= 0.0 || !step.is_finite() {
            return Err(CoreError::invalid_input("step must be positive and finite"));
        }
        self.validate_signal(signal, t_end)?;
        let system = SelectionOde {
            drift: &self.drift,
            signal,
        };
        Rk4::with_step(step)
            .integrate(&system, 0.0, x0, t_end)
            .map_err(CoreError::from)
    }

    /// Integrates the constant selection `ϑ(t) ≡ theta` (the uncertain scenario).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DifferentialInclusion::solve`], plus an error when
    /// `theta` lies outside `Θ`.
    pub fn solve_constant(&self, theta: &[f64], x0: StateVec, t_end: f64) -> Result<Trajectory> {
        if !self.drift.params().contains(theta) {
            return Err(CoreError::invalid_input(format!(
                "constant parameter {theta:?} lies outside the uncertainty set"
            )));
        }
        self.solve(&ConstantSignal::new(theta.to_vec()), x0, t_end)
    }

    fn check_x0(&self, x0: &StateVec) -> Result<()> {
        if x0.dim() != self.drift.dim() {
            return Err(CoreError::invalid_input(format!(
                "initial condition has dimension {}, drift has dimension {}",
                x0.dim(),
                self.drift.dim()
            )));
        }
        Ok(())
    }

    fn validate_signal<S: ParamSignal>(&self, signal: &S, t_end: f64) -> Result<()> {
        // Spot-check the signal at a few times; a full check is impossible for
        // arbitrary closures.
        for k in 0..=8 {
            let t = t_end * k as f64 / 8.0;
            let theta = signal.theta_at(t);
            if !self.drift.params().contains(&theta) {
                return Err(CoreError::invalid_input(format!(
                    "parameter signal leaves the uncertainty set at t = {t} (value {theta:?})"
                )));
            }
        }
        Ok(())
    }
}

/// The non-autonomous ODE obtained by fixing a parameter signal.
struct SelectionOde<'a, D, S> {
    drift: &'a D,
    signal: &'a S,
}

impl<D: ImpreciseDrift, S: ParamSignal> OdeSystem for SelectionOde<'_, D, S> {
    fn dim(&self) -> usize {
        self.drift.dim()
    }

    fn rhs(&self, t: f64, x: &StateVec, dx: &mut StateVec) {
        let theta = self.signal.theta_at(t);
        self.drift.drift_into(x, &theta, dx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drift::FnDrift;
    use crate::signal::{FnSignal, PiecewiseSignal};
    use mfu_ctmc::params::ParamSpace;

    fn decay_drift() -> FnDrift<impl Fn(&StateVec, &[f64], &mut StateVec)> {
        let theta = ParamSpace::single("rate", 1.0, 2.0).unwrap();
        FnDrift::new(1, theta, |x: &StateVec, th: &[f64], dx: &mut StateVec| {
            dx[0] = -th[0] * x[0]
        })
    }

    #[test]
    fn constant_selection_matches_exponential() {
        let inclusion = DifferentialInclusion::new(decay_drift());
        let traj = inclusion
            .solve_constant(&[1.5], StateVec::from([2.0]), 1.0)
            .unwrap();
        assert!((traj.last_state()[0] - 2.0 * (-1.5f64).exp()).abs() < 1e-6);
    }

    #[test]
    fn constant_selection_outside_theta_is_rejected() {
        let inclusion = DifferentialInclusion::new(decay_drift());
        assert!(inclusion
            .solve_constant(&[5.0], StateVec::from([1.0]), 1.0)
            .is_err());
    }

    #[test]
    fn piecewise_selection_composes_exponentials() {
        let inclusion = DifferentialInclusion::new(decay_drift());
        let signal = PiecewiseSignal::new(vec![0.5], vec![vec![2.0], vec![1.0]]);
        let traj = inclusion
            .solve(&signal, StateVec::from([1.0]), 1.0)
            .unwrap();
        let expected = (-1.0f64).exp() * (-0.5f64).exp();
        assert!((traj.last_state()[0] - expected).abs() < 1e-5);
        // fixed-step integration agrees (the switching instant falls inside a
        // step, so accuracy is limited by the step size there)
        let traj2 = inclusion
            .solve_fixed_step(&signal, StateVec::from([1.0]), 1.0, 1e-4)
            .unwrap();
        assert!((traj2.last_state()[0] - expected).abs() < 1e-4);
    }

    #[test]
    fn signals_leaving_theta_are_rejected() {
        let inclusion = DifferentialInclusion::new(decay_drift());
        let signal = FnSignal::new(|t: f64| vec![1.0 + 5.0 * t]);
        assert!(inclusion
            .solve(&signal, StateVec::from([1.0]), 1.0)
            .is_err());
    }

    #[test]
    fn initial_condition_dimension_is_checked() {
        let inclusion = DifferentialInclusion::new(decay_drift());
        assert!(inclusion
            .solve_constant(&[1.0], StateVec::from([1.0, 2.0]), 1.0)
            .is_err());
        assert!(inclusion
            .solve_fixed_step(
                &ConstantSignal::new(vec![1.0]),
                StateVec::from([1.0]),
                1.0,
                0.0
            )
            .is_err());
    }

    #[test]
    fn accessors() {
        let inclusion = DifferentialInclusion::new(decay_drift());
        assert_eq!(inclusion.dim(), 1);
        assert_eq!(inclusion.drift().params().dim(), 1);
    }
}
