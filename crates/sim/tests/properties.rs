//! Property-based tests for the stochastic simulator.

use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_num::StateVec;
use mfu_sim::gillespie::{SimulationOptions, Simulator};
use mfu_sim::policy::{ConstantPolicy, ParameterPolicy, RandomJumpPolicy};
use mfu_sim::stats::RunningStats;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn occupancy_model() -> PopulationModel {
    let params = ParamSpace::new(vec![
        ("pickup", Interval::new(0.2, 2.0).unwrap()),
        ("return", Interval::new(0.2, 2.0).unwrap()),
    ])
    .unwrap();
    PopulationModel::builder(1, params)
        .transition(TransitionClass::new(
            "pickup",
            [-1.0],
            |x: &StateVec, th: &[f64]| {
                if x[0] > 0.0 {
                    th[0]
                } else {
                    0.0
                }
            },
        ))
        .transition(TransitionClass::new(
            "return",
            [1.0],
            |x: &StateVec, th: &[f64]| {
                if x[0] < 1.0 {
                    th[1]
                } else {
                    0.0
                }
            },
        ))
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulated occupancies always stay inside [0, 1], whatever the admissible
    /// parameter value, seed or initial state.
    #[test]
    fn occupancy_stays_in_the_unit_interval(
        scale in 5usize..60,
        start in 0usize..60,
        pickup in 0.2..2.0f64,
        ret in 0.2..2.0f64,
        seed in 0u64..1000,
    ) {
        let start = start.min(scale) as i64;
        let simulator = Simulator::new(occupancy_model(), scale).unwrap();
        let mut policy = ConstantPolicy::new(vec![pickup, ret]);
        let run = simulator
            .simulate(&[start], &mut policy, &SimulationOptions::new(5.0), seed)
            .unwrap();
        for (_, state) in run.trajectory().iter() {
            prop_assert!(state[0] >= -1e-12 && state[0] <= 1.0 + 1e-12);
        }
        prop_assert!(run.final_counts()[0] >= 0 && run.final_counts()[0] <= scale as i64);
    }

    /// The same seed always reproduces the same run; different seeds are
    /// allowed to differ (and typically do).
    #[test]
    fn runs_are_deterministic_in_the_seed(seed in 0u64..500) {
        let simulator = Simulator::new(occupancy_model(), 30).unwrap();
        let options = SimulationOptions::new(3.0);
        let mut p1 = ConstantPolicy::new(vec![1.0, 1.0]);
        let mut p2 = ConstantPolicy::new(vec![1.0, 1.0]);
        let a = simulator.simulate(&[15], &mut p1, &options, seed).unwrap();
        let b = simulator.simulate(&[15], &mut p2, &options, seed).unwrap();
        prop_assert_eq!(a.final_counts(), b.final_counts());
        prop_assert_eq!(a.events(), b.events());
    }

    /// A random-jump policy only ever emits values inside the parameter box.
    #[test]
    fn random_jump_policy_respects_the_box(seed in 0u64..500, rate in 0.5..20.0f64) {
        let space = ParamSpace::new(vec![("theta", Interval::new(1.0, 10.0).unwrap())]).unwrap();
        let mut policy = RandomJumpPolicy::new(space.clone(), vec![5.0], 0, 0, rate, 5.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for k in 1..100 {
            let theta = policy.value(k as f64 * 0.05, &StateVec::from([0.5]), &mut rng);
            prop_assert!(space.contains(&theta));
        }
    }

    /// Welford statistics match the naive two-pass formulas on random samples.
    #[test]
    fn running_stats_match_two_pass(values in prop::collection::vec(-100.0..100.0f64, 2..50)) {
        let mut stats = RunningStats::new();
        values.iter().for_each(|&v| stats.push(v));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        prop_assert!((stats.mean() - mean).abs() < 1e-9);
        prop_assert!((stats.variance() - variance).abs() < 1e-7);
        prop_assert_eq!(stats.count(), values.len());
    }
}
