//! Parameter policies: the time-varying signals `ϑ(t)` of the imprecise scenario.
//!
//! An *imprecise* population process leaves the parameter free to vary
//! arbitrarily inside `Θ`, adapted to the history of the process. In
//! simulation we must pick concrete realisations of that freedom; this module
//! provides the policies used in the paper's experiments plus a few generic
//! ones:
//!
//! * [`ConstantPolicy`] — the uncertain scenario (a fixed, possibly unknown, value);
//! * [`PiecewiseConstantPolicy`] — deterministic switching schedules;
//! * [`TimeFunctionPolicy`] — an arbitrary deterministic function of time;
//! * [`HysteresisPolicy`] — the feedback policy `θ1` of Section V-E: switch
//!   between the extreme parameter values when an observed coordinate crosses
//!   thresholds;
//! * [`RandomJumpPolicy`] — the policy `θ2` of Section V-E: resample the
//!   parameter uniformly in `Θ` at a state-dependent rate.
//!
//! Policies are queried by the simulator at every jump of the CTMC, receiving
//! the current time and normalised state. They may keep internal state (the
//! hysteresis mode, the last jump time, …), which is reset via
//! [`ParameterPolicy::reset`] before each replication.

use mfu_ctmc::params::ParamSpace;
use mfu_num::StateVec;
use rand::Rng;
use rand::RngCore;

/// A realisation of the imprecise parameter signal `ϑ(t)`.
///
/// Implementors return the parameter vector to use from the current instant
/// until the next query. The simulator queries the policy at every CTMC
/// event, so feedback policies observe the state with event-level resolution.
pub trait ParameterPolicy {
    /// Resets the policy's internal state before a new replication.
    fn reset(&mut self) {}

    /// Returns the parameter vector in effect at time `t` and state `x`.
    fn value(&mut self, t: f64, x: &StateVec, rng: &mut dyn RngCore) -> Vec<f64>;

    /// Change-detection contract: `true` promises that
    /// [`ParameterPolicy::value`] returns the same vector at every query of
    /// a replication, independent of `(t, x)`, *and* never consumes
    /// randomness from `rng`.
    ///
    /// The simulator uses the promise to query the policy once per run
    /// instead of once per event, skipping both the per-event allocation
    /// and the ϑ-changed comparison on the hot path. A policy that answers
    /// `true` while varying its value silently simulates the *first*
    /// returned value — the default is therefore `false`, and only
    /// genuinely constant policies (such as [`ConstantPolicy`]) opt in.
    fn is_constant(&self) -> bool {
        false
    }

    /// Human-readable name used in reports and figures.
    fn name(&self) -> &str {
        "policy"
    }
}

/// The uncertain scenario: a constant (but possibly unknown) parameter value.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstantPolicy {
    theta: Vec<f64>,
}

impl ConstantPolicy {
    /// Creates a policy that always returns `theta`.
    pub fn new(theta: Vec<f64>) -> Self {
        ConstantPolicy { theta }
    }
}

impl ParameterPolicy for ConstantPolicy {
    fn value(&mut self, _t: f64, _x: &StateVec, _rng: &mut dyn RngCore) -> Vec<f64> {
        self.theta.clone()
    }

    fn is_constant(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "constant"
    }
}

/// A deterministic piecewise-constant schedule.
///
/// The value on `[t_k, t_{k+1})` is `values[k]`; before the first breakpoint
/// the first value applies, after the last breakpoint the last value applies.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseConstantPolicy {
    breakpoints: Vec<f64>,
    values: Vec<Vec<f64>>,
}

impl PiecewiseConstantPolicy {
    /// Creates a schedule from breakpoints `t_1 < … < t_m` and `m + 1` values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != breakpoints.len() + 1` or the breakpoints
    /// are not strictly increasing.
    pub fn new(breakpoints: Vec<f64>, values: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            values.len(),
            breakpoints.len() + 1,
            "need one more value than breakpoints"
        );
        assert!(
            breakpoints.windows(2).all(|w| w[0] < w[1]),
            "breakpoints must be strictly increasing"
        );
        PiecewiseConstantPolicy {
            breakpoints,
            values,
        }
    }
}

impl ParameterPolicy for PiecewiseConstantPolicy {
    fn value(&mut self, t: f64, _x: &StateVec, _rng: &mut dyn RngCore) -> Vec<f64> {
        let idx = self.breakpoints.iter().take_while(|&&b| t >= b).count();
        self.values[idx].clone()
    }

    /// A schedule with no breakpoints is a constant.
    fn is_constant(&self) -> bool {
        self.breakpoints.is_empty()
    }

    fn name(&self) -> &str {
        "piecewise-constant"
    }
}

/// An arbitrary deterministic function of time.
pub struct TimeFunctionPolicy<F> {
    f: F,
    label: String,
}

impl<F> TimeFunctionPolicy<F>
where
    F: FnMut(f64) -> Vec<f64>,
{
    /// Creates a policy from a function of time.
    pub fn new(label: impl Into<String>, f: F) -> Self {
        TimeFunctionPolicy {
            f,
            label: label.into(),
        }
    }
}

impl<F> ParameterPolicy for TimeFunctionPolicy<F>
where
    F: FnMut(f64) -> Vec<f64>,
{
    fn value(&mut self, t: f64, _x: &StateVec, _rng: &mut dyn RngCore) -> Vec<f64> {
        (self.f)(t)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// The feedback policy `θ1` of Section V-E of the paper.
///
/// The policy switches one parameter coordinate between the two extreme
/// values of its interval based on an observed state coordinate: when the
/// parameter is at its *high* value and the observed coordinate drops below
/// `low_threshold`, it switches to the *low* value; when the parameter is at
/// its low value and the observed coordinate rises above `high_threshold`, it
/// switches back to the high value. All other parameter coordinates stay at
/// the supplied base value.
///
/// With the SIR parameters of the paper (`observe = X_S`, thresholds 0.5 and
/// 0.85), this produces the near-periodic oscillations of Figure 6(a).
#[derive(Debug, Clone, PartialEq)]
pub struct HysteresisPolicy {
    base: Vec<f64>,
    param_index: usize,
    low_value: f64,
    high_value: f64,
    observe: usize,
    low_threshold: f64,
    high_threshold: f64,
    currently_high: bool,
    initially_high: bool,
}

impl HysteresisPolicy {
    /// Creates a hysteresis policy.
    ///
    /// * `base` — parameter vector used for all coordinates except `param_index`;
    /// * `param_index` — which parameter coordinate is switched;
    /// * `(low_value, high_value)` — the two extreme values it switches between;
    /// * `observe` — which *state* coordinate is monitored;
    /// * `low_threshold` / `high_threshold` — switch to low when the observed
    ///   coordinate falls below `low_threshold` while high, switch to high when
    ///   it rises above `high_threshold` while low;
    /// * `start_high` — whether the policy starts at the high value.
    ///
    /// # Panics
    ///
    /// Panics if `param_index` is out of range of `base` or
    /// `low_threshold > high_threshold`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        base: Vec<f64>,
        param_index: usize,
        low_value: f64,
        high_value: f64,
        observe: usize,
        low_threshold: f64,
        high_threshold: f64,
        start_high: bool,
    ) -> Self {
        assert!(param_index < base.len(), "param_index out of range");
        assert!(
            low_threshold <= high_threshold,
            "thresholds must be ordered"
        );
        HysteresisPolicy {
            base,
            param_index,
            low_value,
            high_value,
            observe,
            low_threshold,
            high_threshold,
            currently_high: start_high,
            initially_high: start_high,
        }
    }

    /// Whether the switched coordinate is currently at its high value.
    pub fn is_high(&self) -> bool {
        self.currently_high
    }
}

impl ParameterPolicy for HysteresisPolicy {
    fn reset(&mut self) {
        self.currently_high = self.initially_high;
    }

    fn value(&mut self, _t: f64, x: &StateVec, _rng: &mut dyn RngCore) -> Vec<f64> {
        let observed = x[self.observe];
        if self.currently_high && observed < self.low_threshold {
            self.currently_high = false;
        } else if !self.currently_high && observed > self.high_threshold {
            self.currently_high = true;
        }
        let mut theta = self.base.clone();
        theta[self.param_index] = if self.currently_high {
            self.high_value
        } else {
            self.low_value
        };
        theta
    }

    fn name(&self) -> &str {
        "hysteresis"
    }
}

/// The random-jump policy `θ2` of Section V-E of the paper.
///
/// The switched parameter coordinate jumps to a fresh value, drawn uniformly
/// from its interval in `Θ`, at a rate `rate_scale · x[observe]`. Between
/// jumps the value is held constant. The jump process is simulated by
/// thinning against the simulator's event clock: at each query the policy
/// draws whether a jump occurred during the elapsed interval, using the
/// currently observed state as the rate modulator.
pub struct RandomJumpPolicy {
    space: ParamSpace,
    base: Vec<f64>,
    param_index: usize,
    observe: usize,
    rate_scale: f64,
    current: f64,
    initial: f64,
    last_time: f64,
}

impl RandomJumpPolicy {
    /// Creates a random-jump policy.
    ///
    /// * `space` — the parameter space from which fresh values are drawn;
    /// * `base` — parameter vector used for the non-switched coordinates;
    /// * `param_index` — which parameter coordinate jumps;
    /// * `observe` — which state coordinate modulates the jump rate;
    /// * `rate_scale` — the jump rate is `rate_scale · x[observe]`;
    /// * `initial` — the value held before the first jump.
    ///
    /// # Panics
    ///
    /// Panics if `param_index` is out of range of `base` or of the space.
    pub fn new(
        space: ParamSpace,
        base: Vec<f64>,
        param_index: usize,
        observe: usize,
        rate_scale: f64,
        initial: f64,
    ) -> Self {
        assert!(param_index < base.len(), "param_index out of range of base");
        assert!(
            param_index < space.dim(),
            "param_index out of range of the parameter space"
        );
        RandomJumpPolicy {
            space,
            base,
            param_index,
            observe,
            rate_scale,
            current: initial,
            initial,
            last_time: 0.0,
        }
    }

    /// The value currently held by the switched coordinate.
    pub fn current(&self) -> f64 {
        self.current
    }
}

impl ParameterPolicy for RandomJumpPolicy {
    fn reset(&mut self) {
        self.current = self.initial;
        self.last_time = 0.0;
    }

    fn value(&mut self, t: f64, x: &StateVec, rng: &mut dyn RngCore) -> Vec<f64> {
        let dt = (t - self.last_time).max(0.0);
        self.last_time = t;
        let rate = self.rate_scale * x[self.observe].max(0.0);
        if rate > 0.0 && dt > 0.0 {
            let jump_probability = 1.0 - (-rate * dt).exp();
            if rng.gen::<f64>() < jump_probability {
                let interval = self.space.intervals()[self.param_index];
                self.current = interval.lo() + interval.width() * rng.gen::<f64>();
            }
        }
        let mut theta = self.base.clone();
        theta[self.param_index] = self.current;
        theta
    }

    fn name(&self) -> &str {
        "random-jump"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mfu_ctmc::params::Interval;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn constant_policy_returns_fixed_value() {
        let mut p = ConstantPolicy::new(vec![1.0, 2.0]);
        let x = StateVec::from([0.5]);
        assert_eq!(p.value(0.0, &x, &mut rng()), vec![1.0, 2.0]);
        assert_eq!(p.value(10.0, &x, &mut rng()), vec![1.0, 2.0]);
        assert_eq!(p.name(), "constant");
    }

    #[test]
    fn piecewise_constant_switches_at_breakpoints() {
        let mut p =
            PiecewiseConstantPolicy::new(vec![1.0, 2.0], vec![vec![0.0], vec![1.0], vec![2.0]]);
        let x = StateVec::from([0.0]);
        assert_eq!(p.value(0.5, &x, &mut rng()), vec![0.0]);
        assert_eq!(p.value(1.0, &x, &mut rng()), vec![1.0]);
        assert_eq!(p.value(1.5, &x, &mut rng()), vec![1.0]);
        assert_eq!(p.value(5.0, &x, &mut rng()), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "one more value")]
    fn piecewise_constant_validates_lengths() {
        let _ = PiecewiseConstantPolicy::new(vec![1.0], vec![vec![0.0]]);
    }

    #[test]
    fn time_function_policy_evaluates_closure() {
        let mut p = TimeFunctionPolicy::new("ramp", |t: f64| vec![t * 2.0]);
        let x = StateVec::from([0.0]);
        assert_eq!(p.value(1.5, &x, &mut rng()), vec![3.0]);
        assert_eq!(p.name(), "ramp");
    }

    #[test]
    fn hysteresis_switches_and_resets() {
        // observe coordinate 0, switch param 0 between 1 (low) and 10 (high)
        let mut p = HysteresisPolicy::new(vec![0.0], 0, 1.0, 10.0, 0, 0.5, 0.85, true);
        let mut r = rng();
        // state above low threshold: stays high
        assert_eq!(p.value(0.0, &StateVec::from([0.7]), &mut r)[0], 10.0);
        assert!(p.is_high());
        // drops below 0.5: switches to low
        assert_eq!(p.value(1.0, &StateVec::from([0.4]), &mut r)[0], 1.0);
        assert!(!p.is_high());
        // stays low until observed rises above 0.85
        assert_eq!(p.value(2.0, &StateVec::from([0.7]), &mut r)[0], 1.0);
        assert_eq!(p.value(3.0, &StateVec::from([0.9]), &mut r)[0], 10.0);
        // reset restores the initial mode
        p.reset();
        assert!(p.is_high());
    }

    #[test]
    fn random_jump_policy_stays_in_interval_and_jumps() {
        let space = ParamSpace::new(vec![("theta", Interval::new(1.0, 10.0).unwrap())]).unwrap();
        let mut p = RandomJumpPolicy::new(space, vec![5.0], 0, 0, 50.0, 5.0);
        let mut r = rng();
        let mut distinct = std::collections::BTreeSet::new();
        for k in 1..200 {
            let t = k as f64 * 0.1;
            let theta = p.value(t, &StateVec::from([0.5]), &mut r);
            assert!(theta[0] >= 1.0 && theta[0] <= 10.0);
            distinct.insert((theta[0] * 1e9) as i64);
        }
        assert!(
            distinct.len() > 3,
            "expected several jumps, got {}",
            distinct.len()
        );
        p.reset();
        assert_eq!(p.current(), 5.0);
    }

    #[test]
    fn random_jump_policy_never_jumps_when_rate_is_zero() {
        let space = ParamSpace::new(vec![("theta", Interval::new(1.0, 10.0).unwrap())]).unwrap();
        let mut p = RandomJumpPolicy::new(space, vec![5.0], 0, 0, 5.0, 2.0);
        let mut r = rng();
        for k in 1..50 {
            let theta = p.value(k as f64, &StateVec::from([0.0]), &mut r);
            assert_eq!(theta[0], 2.0);
        }
    }
}
