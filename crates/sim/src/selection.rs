//! Propensity selection: which transition fires, given the roulette target.
//!
//! After the waiting time of an SSA event is drawn, the simulator must pick
//! the firing transition with probability proportional to its propensity.
//! The textbook *linear scan* walks the rate array subtracting rates from a
//! uniform target — `O(K)` per event, which dominates the per-event cost of
//! generated models with hundreds of rules once propensity *maintenance* is
//! already `O(affected)` (see the dependency graph in
//! [`gillespie`](crate::gillespie)). This module provides the scan as the
//! reference implementation plus two sub-linear selectors:
//!
//! * [`SumTree`] — a binary partial-sum tree over the rate array:
//!   `O(log K)` per update and per sample (Gibson & Bruck's indexed
//!   next-reaction bookkeeping, specialised to the direct method);
//! * [`CompositionRejection`] — power-of-two magnitude groups with
//!   rejection sampling inside the chosen group, `O(1)` expected per
//!   sample and per update (Slepoy, Thompson & Plimpton, *A constant-time
//!   kinetic Monte Carlo algorithm*, J. Chem. Phys. 128, 2008).
//!
//! [`SelectionStrategy`] is the user-facing knob on
//! [`SimulationOptions`](crate::gillespie::SimulationOptions); the default
//! [`SelectionStrategy::Auto`] picks by transition count.
//!
//! # Exactness and ulp policy
//!
//! All three selectors draw from the same discrete distribution
//! `P(k) ∝ rate_k` up to floating-point rounding of partial sums; they
//! differ only in *which* rounding they commit to:
//!
//! * [`linear_select`] subtracts rates in index order — the bit-exact
//!   reference. Combined with the `FullRescan`/`DependencyGraph` propensity
//!   strategies it defines the repository's reproducibility contract.
//! * [`SumTree`] compares the target against subtree sums instead of index-
//!   order prefixes. Whenever every involved partial sum is exactly
//!   representable (e.g. integer or dyadic rates) the selected index equals
//!   the linear scan's; otherwise the two may disagree on targets falling
//!   inside an ulp-wide window around a prefix-sum boundary. It consumes
//!   the *same single* uniform draw as the scan, so runs stay comparable
//!   event by event.
//! * [`CompositionRejection`] consumes a variable number of uniform draws
//!   (group pick + rejection loop), so its event sequence diverges from the
//!   scan's immediately. It is statistically exact: the rejection step
//!   accepts with the exact stored rate, and only the group pick sees
//!   (ulp-level, periodically refreshed) drift of the incremental group
//!   sums.
//!
//! Both sub-linear selectors share the scan's boundary guarantee: a
//! transition with rate exactly `0.0` is never selected (the tree never
//! descends into an all-zero subtree; the groups only hold positive rates).

use rand::Rng;
use rand::RngCore;

/// How the simulator picks the firing transition among `K` candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionStrategy {
    /// Pick by transition count: [`SelectionStrategy::LinearScan`] for small
    /// `K`, [`SelectionStrategy::SumTree`] for mid-sized models and
    /// [`SelectionStrategy::CompositionRejection`] for very large ones (see
    /// [`SelectionStrategy::resolve`] for the thresholds).
    Auto,
    /// The `O(K)` index-order roulette scan — the bit-exact reference.
    LinearScan,
    /// Binary partial-sum tree: `O(log K)` update and sample.
    SumTree,
    /// Composition-rejection grouping: `O(1)` expected update and sample.
    CompositionRejection,
}

impl SelectionStrategy {
    /// Largest transition count for which [`SelectionStrategy::Auto`] keeps
    /// the linear scan: the scan's cache-friendly pass beats tree pointer
    /// chasing on small models (measured break-even on this container is
    /// around `K ≈ 48`; see `BENCH_rate_engine.json`'s `ssa_selection`
    /// group).
    pub const AUTO_LINEAR_MAX: usize = 64;
    /// Largest transition count for which [`SelectionStrategy::Auto`] picks
    /// the sum tree; larger models use composition-rejection.
    pub const AUTO_TREE_MAX: usize = 1024;

    /// Resolves `Auto` against a transition count; concrete strategies
    /// return themselves.
    #[must_use]
    pub fn resolve(self, n_transitions: usize) -> SelectionStrategy {
        match self {
            SelectionStrategy::Auto => {
                if n_transitions <= Self::AUTO_LINEAR_MAX {
                    SelectionStrategy::LinearScan
                } else if n_transitions <= Self::AUTO_TREE_MAX {
                    SelectionStrategy::SumTree
                } else {
                    SelectionStrategy::CompositionRejection
                }
            }
            concrete => concrete,
        }
    }
}

impl std::fmt::Display for SelectionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SelectionStrategy::Auto => "auto",
            SelectionStrategy::LinearScan => "linear",
            SelectionStrategy::SumTree => "tree",
            SelectionStrategy::CompositionRejection => "composition-rejection",
        })
    }
}

/// Index-order roulette selection: returns the first `k` with
/// `target < Σ_{i≤k} rate_i` under sequential subtraction.
///
/// When `target` overshoots the reachable prefix sums (possible when the
/// caller's propensity total drifted above the true rate sum, e.g. under
/// `IncrementalTotal` bookkeeping), the scan falls back to the **last
/// positive-rate** transition instead of blindly firing the final array
/// entry — firing a rate-`0.0` (impossible) transition was the historical
/// fallthrough bug. Returns `None` only when every rate is zero.
pub fn linear_select(rates: &[f64], mut target: f64) -> Option<usize> {
    let mut fallback = None;
    for (k, &r) in rates.iter().enumerate() {
        if target < r {
            return Some(k);
        }
        if r > 0.0 {
            fallback = Some(k);
        }
        target -= r;
    }
    fallback
}

/// A binary partial-sum tree over a fixed-length rate array.
///
/// Leaves hold the rates; every internal node holds the sum of its
/// children. Point updates and roulette sampling both walk one root-leaf
/// path, so they cost `O(log K)`. The tree never selects a zero-rate leaf:
/// the descent refuses to enter an all-zero subtree, which doubles as the
/// overshoot fallback (a drifted target ends at the rightmost positive
/// leaf).
#[derive(Debug, Clone)]
pub struct SumTree {
    /// Number of live leaves (the transition count).
    len: usize,
    /// Leaf capacity: `len` rounded up to a power of two.
    cap: usize,
    /// Heap-ordered nodes: root at `1`, leaf `k` at `cap + k`.
    node: Vec<f64>,
}

impl SumTree {
    /// Creates an all-zero tree over `len` rates.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "a sum tree needs at least one leaf");
        let cap = len.next_power_of_two();
        SumTree {
            len,
            cap,
            node: vec![0.0; 2 * cap],
        }
    }

    /// Number of rates the tree indexes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree has no leaves (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root sum (the tree's own rounding of the total propensity).
    pub fn total(&self) -> f64 {
        self.node[1]
    }

    /// Reloads every leaf from `rates` and recomputes all internal sums in
    /// `O(K)`.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len()` differs from the tree length.
    pub fn rebuild(&mut self, rates: &[f64]) {
        assert_eq!(rates.len(), self.len, "rate array length changed");
        self.node[self.cap..self.cap + self.len].copy_from_slice(rates);
        for i in (1..self.cap).rev() {
            self.node[i] = self.node[2 * i] + self.node[2 * i + 1];
        }
    }

    /// Sets leaf `k` to `rate` and refreshes the sums on its root path.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn update(&mut self, k: usize, rate: f64) {
        assert!(k < self.len, "leaf index out of range");
        let mut i = self.cap + k;
        self.node[i] = rate;
        while i > 1 {
            i /= 2;
            self.node[i] = self.node[2 * i] + self.node[2 * i + 1];
        }
    }

    /// Roulette-selects the leaf containing `target` (`0 ≤ target <
    /// total`, up to the caller's rounding). Returns `None` when the root
    /// sum is not positive.
    ///
    /// The descent goes right only when the right subtree has positive sum,
    /// so a target that overshoots (ulp drift of the caller's total) lands
    /// on the rightmost positive-rate leaf — never on a rate-`0.0` one.
    pub fn sample(&self, mut target: f64) -> Option<usize> {
        if self.node[1] <= 0.0 {
            return None;
        }
        let mut i = 1;
        while i < self.cap {
            let left = self.node[2 * i];
            if target < left || self.node[2 * i + 1] <= 0.0 {
                i *= 2;
            } else {
                target -= left;
                i = 2 * i + 1;
            }
        }
        Some(i - self.cap)
    }
}

/// Number of group-sum mutations after which a group's incremental sum is
/// recomputed exactly (bounds floating-point drift the same way the
/// simulator's `IncrementalTotal` refresh does).
const GROUP_REFRESH_INTERVAL: u32 = 64;

/// Upper bound on rejection attempts before the sampler falls back to an
/// exact in-group linear scan (acceptance is ≥ 1/2 per attempt, so 64
/// failures signal a drifted group sum rather than bad luck).
const MAX_REJECTIONS: u32 = 64;

/// One magnitude group of the composition-rejection sampler: the
/// transitions whose rate lies in `[2^(e-1), 2^e)` for the group's
/// exponent bucket.
#[derive(Debug, Clone, Default)]
struct Group {
    /// Incrementally maintained sum of the member rates.
    sum: f64,
    /// Member transition indices, unordered (swap-remove on departure).
    members: Vec<u32>,
    /// Mutations since `sum` was last recomputed exactly.
    dirty: u32,
}

/// Composition-rejection transition selector.
///
/// Positive rates are bucketed by binary exponent, so all members of a
/// group lie within a factor of two of each other. Sampling composes the
/// group choice (roulette over the few occupied group sums) with rejection
/// inside the group (uniform member, accepted with probability
/// `rate / 2^e ≥ 1/2`), giving `O(1)` expected work independent of `K`.
/// Rate updates move a transition between buckets in `O(1)` amortised.
#[derive(Debug, Clone)]
pub struct CompositionRejection {
    /// Current rate of every transition (the sampler's own copy).
    rates: Vec<f64>,
    /// Occupied exponent buckets, keyed by the biased IEEE-754 exponent.
    groups: std::collections::BTreeMap<u16, Group>,
    /// Per-transition membership: `(exponent bucket, position in members)`,
    /// `None` while the rate is zero.
    slot: Vec<Option<(u16, u32)>>,
}

/// The biased IEEE-754 exponent of a positive rate: all subnormals share
/// bucket `0`, normals `1..=2046`.
fn exponent_bucket(rate: f64) -> u16 {
    ((rate.to_bits() >> 52) & 0x7ff) as u16
}

/// Exclusive upper bound `2^e` of the rates in `bucket` (every member is
/// `< bound` and `≥ bound / 2` for normal buckets), saturated to
/// `f64::MAX` for the top bucket so the acceptance ratio stays finite.
fn bucket_bound(bucket: u16) -> f64 {
    if bucket >= 2046 {
        f64::MAX
    } else {
        f64::from_bits(u64::from(bucket + 1) << 52)
    }
}

impl CompositionRejection {
    /// Creates a selector over `len` all-zero rates.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "composition-rejection needs at least one rate");
        CompositionRejection {
            rates: vec![0.0; len],
            groups: std::collections::BTreeMap::new(),
            slot: vec![None; len],
        }
    }

    /// Number of rates the selector indexes.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when the selector has no rates (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Sum of the (incrementally maintained) group sums.
    pub fn total(&self) -> f64 {
        self.groups.values().map(|g| g.sum).sum()
    }

    /// Reloads every rate, rebuilding the groups from scratch in `O(K)`.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len()` differs from the selector length.
    pub fn rebuild(&mut self, rates: &[f64]) {
        assert_eq!(rates.len(), self.rates.len(), "rate array length changed");
        self.groups.clear();
        self.slot.fill(None);
        for (k, &r) in rates.iter().enumerate() {
            self.rates[k] = r;
            if r > 0.0 {
                let bucket = exponent_bucket(r);
                let group = self.groups.entry(bucket).or_default();
                self.slot[k] = Some((bucket, group.members.len() as u32));
                group.members.push(k as u32);
                group.sum += r;
            }
        }
        for group in self.groups.values_mut() {
            group.dirty = 0;
        }
    }

    /// Updates the rate of transition `k`, migrating it between groups if
    /// its magnitude bucket changed.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn update(&mut self, k: usize, rate: f64) {
        let old = self.rates[k];
        if old == rate {
            return;
        }
        self.rates[k] = rate;
        let new_bucket = (rate > 0.0).then(|| exponent_bucket(rate));
        match self.slot[k] {
            Some((bucket, _)) if new_bucket == Some(bucket) => {
                let group = self.groups.get_mut(&bucket).expect("group exists");
                group.sum += rate - old;
                group.dirty += 1;
                self.refresh_if_stale(bucket);
            }
            Some((bucket, pos)) => {
                self.remove_member(bucket, pos, old);
                self.insert_member(k, new_bucket, rate);
            }
            None => self.insert_member(k, new_bucket, rate),
        }
    }

    /// Swap-removes a member (whose pre-update rate was `old_rate`),
    /// repairing the slot of the swapped-in member and dropping the group
    /// when it empties.
    fn remove_member(&mut self, bucket: u16, pos: u32, old_rate: f64) {
        let now_empty = {
            let group = self.groups.get_mut(&bucket).expect("group exists");
            group.members.swap_remove(pos as usize);
            group.sum -= old_rate;
            group.dirty += 1;
            if let Some(&moved) = group.members.get(pos as usize) {
                self.slot[moved as usize] = Some((bucket, pos));
            }
            group.members.is_empty()
        };
        if now_empty {
            self.groups.remove(&bucket);
        } else {
            self.refresh_if_stale(bucket);
        }
    }

    /// Appends `k` to its new bucket (or clears its slot for rate zero).
    fn insert_member(&mut self, k: usize, bucket: Option<u16>, rate: f64) {
        match bucket {
            Some(b) => {
                let group = self.groups.entry(b).or_default();
                self.slot[k] = Some((b, group.members.len() as u32));
                group.members.push(k as u32);
                group.sum += rate;
                group.dirty += 1;
                self.refresh_if_stale(b);
            }
            None => self.slot[k] = None,
        }
    }

    fn refresh_if_stale(&mut self, bucket: u16) {
        if self
            .groups
            .get(&bucket)
            .is_some_and(|g| g.dirty >= GROUP_REFRESH_INTERVAL)
        {
            self.refresh(bucket);
        }
    }

    /// Recomputes a group sum exactly from its members (membership is
    /// untouched — every member holds a positive rate by construction).
    fn refresh(&mut self, bucket: u16) {
        let rates = &self.rates;
        let group = self.groups.get_mut(&bucket).expect("group exists");
        group.sum = group.members.iter().map(|&m| rates[m as usize]).sum();
        group.dirty = 0;
    }

    /// Samples a transition with probability proportional to its rate,
    /// consuming as many uniform draws as the rejection loop needs.
    /// Returns `None` when every rate is zero.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let mut rejections = 0u64;
        self.sample_counting(rng, &mut rejections)
    }

    /// Like [`CompositionRejection::sample`], additionally adding the
    /// number of rejected candidate draws to `rejections` (the per-run
    /// rejection-rate counter of the observability layer). The RNG stream
    /// consumption is identical to `sample`'s.
    pub fn sample_counting<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        rejections: &mut u64,
    ) -> Option<usize> {
        let total = self.total();
        if total <= 0.0 {
            return None;
        }
        // compose: roulette over the occupied groups (descending magnitude,
        // so the scan usually stops in the first group)
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = None;
        for (&bucket, group) in self.groups.iter().rev() {
            if group.sum <= 0.0 {
                continue;
            }
            chosen = Some((bucket, group));
            if target < group.sum {
                break;
            }
            target -= group.sum;
        }
        let (bucket, group) = chosen?;
        // reject: uniform member, accepted proportionally to its rate
        let bound = bucket_bound(bucket);
        let len = group.members.len();
        for _ in 0..MAX_REJECTIONS {
            let pick = ((rng.gen::<f64>() * len as f64) as usize).min(len - 1);
            let candidate = group.members[pick] as usize;
            if rng.gen::<f64>() * bound < self.rates[candidate] {
                return Some(candidate);
            }
            *rejections += 1;
        }
        // pathological drift: exact in-group roulette as a deterministic
        // fallback (members are all positive-rate, so this cannot miss)
        let in_group: f64 = group.members.iter().map(|&m| self.rates[m as usize]).sum();
        let scan_target = rng.gen::<f64>() * in_group;
        let mut acc = 0.0;
        for &m in &group.members {
            acc += self.rates[m as usize];
            if scan_target < acc {
                return Some(m as usize);
            }
        }
        group.members.last().map(|&m| m as usize)
    }
}

/// The selector state a simulation run threads between events: the
/// resolved [`SelectionStrategy`] plus whatever acceleration structure it
/// needs.
#[derive(Debug, Clone)]
pub enum Selector {
    /// Stateless index-order scan.
    Linear,
    /// Partial-sum tree kept in lockstep with the rate array.
    Tree(SumTree),
    /// Composition-rejection groups kept in lockstep with the rate array.
    Cr(CompositionRejection),
}

impl Selector {
    /// Builds the selector for a resolved strategy over `len` transitions.
    ///
    /// # Panics
    ///
    /// Panics if `strategy` is still [`SelectionStrategy::Auto`] (call
    /// [`SelectionStrategy::resolve`] first) or `len == 0`.
    pub fn new(strategy: SelectionStrategy, len: usize) -> Self {
        match strategy {
            SelectionStrategy::Auto => unreachable!("resolve() the strategy first"),
            SelectionStrategy::LinearScan => Selector::Linear,
            SelectionStrategy::SumTree => Selector::Tree(SumTree::new(len)),
            SelectionStrategy::CompositionRejection => Selector::Cr(CompositionRejection::new(len)),
        }
    }

    /// Reloads the full rate array (after a propensity rescan).
    pub fn rebuild(&mut self, rates: &[f64]) {
        match self {
            Selector::Linear => {}
            Selector::Tree(tree) => tree.rebuild(rates),
            Selector::Cr(cr) => cr.rebuild(rates),
        }
    }

    /// Records a single-rate change (after a dependency-graph update).
    #[inline]
    pub fn update(&mut self, k: usize, rate: f64) {
        match self {
            Selector::Linear => {}
            Selector::Tree(tree) => tree.update(k, rate),
            Selector::Cr(cr) => cr.update(k, rate),
        }
    }

    /// Chooses the firing transition. `total` is the caller's propensity
    /// total (used by the linear and tree paths; composition-rejection
    /// uses its own group sums). Returns `None` when no positive-rate
    /// transition exists — the caller treats that as an absorbing state.
    #[inline]
    pub fn choose<R: RngCore + ?Sized>(
        &self,
        rates: &[f64],
        total: f64,
        rng: &mut R,
    ) -> Option<usize> {
        let mut rejections = 0u64;
        self.choose_counting(rates, total, rng, &mut rejections)
    }

    /// Like [`Selector::choose`], additionally adding the number of
    /// rejected composition-rejection draws to `rejections` (the linear
    /// and tree paths never reject). Identical RNG stream consumption.
    #[inline]
    pub fn choose_counting<R: RngCore + ?Sized>(
        &self,
        rates: &[f64],
        total: f64,
        rng: &mut R,
        rejections: &mut u64,
    ) -> Option<usize> {
        match self {
            Selector::Linear => linear_select(rates, rng.gen::<f64>() * total),
            Selector::Tree(tree) => tree.sample(rng.gen::<f64>() * total),
            Selector::Cr(cr) => cr.sample_counting(rng, rejections),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn auto_resolves_by_transition_count() {
        use SelectionStrategy::*;
        assert_eq!(Auto.resolve(5), LinearScan);
        assert_eq!(Auto.resolve(64), LinearScan);
        assert_eq!(Auto.resolve(65), SumTree);
        assert_eq!(Auto.resolve(1024), SumTree);
        assert_eq!(Auto.resolve(4096), CompositionRejection);
        assert_eq!(LinearScan.resolve(4096), LinearScan);
        assert_eq!(CompositionRejection.resolve(2), CompositionRejection);
    }

    /// Regression for the zero-rate fallthrough: a target beyond the rate
    /// sum must fall back to the last *positive* rate, never to a trailing
    /// zero entry.
    #[test]
    fn linear_overshoot_falls_back_to_last_positive_rate() {
        let rates = [0.5, 1.0, 0.0, 0.0];
        assert_eq!(linear_select(&rates, 0.2), Some(0));
        assert_eq!(linear_select(&rates, 0.9), Some(1));
        // pre-fix behaviour returned index 3 (rate exactly 0.0) here
        assert_eq!(linear_select(&rates, 1.6), Some(1));
        assert_eq!(linear_select(&[0.0, 0.0], 0.3), None);
        // zero-rate holes in the middle are skipped, not selected
        assert_eq!(linear_select(&[0.0, 2.0, 0.0], 1.9999), Some(1));
    }

    #[test]
    fn tree_matches_linear_scan_on_exactly_representable_rates() {
        // integer rates make every partial sum exact, so the tree must
        // reproduce the linear scan index for index-aligned targets
        let mut rng = StdRng::seed_from_u64(9);
        for len in [1usize, 2, 3, 7, 8, 33, 100] {
            let rates: Vec<f64> = (0..len).map(|_| f64::from(rng.gen::<u32>() % 8)).collect();
            let mut tree = SumTree::new(len);
            tree.rebuild(&rates);
            let total: f64 = rates.iter().sum();
            assert_eq!(tree.total(), total);
            if total == 0.0 {
                assert_eq!(tree.sample(0.0), None);
                continue;
            }
            for step in 0..200 {
                let target = total * (step as f64 + 0.5) / 200.0;
                assert_eq!(
                    tree.sample(target),
                    linear_select(&rates, target),
                    "len {len}, target {target}"
                );
            }
        }
    }

    #[test]
    fn tree_point_updates_track_a_full_rebuild() {
        let mut rng = StdRng::seed_from_u64(4);
        let len = 37;
        let mut rates: Vec<f64> = (0..len).map(|_| rng.gen::<f64>()).collect();
        let mut incremental = SumTree::new(len);
        incremental.rebuild(&rates);
        for _ in 0..500 {
            let k = (rng.gen::<u32>() as usize) % len;
            let value = if rng.gen::<bool>() {
                rng.gen::<f64>() * 3.0
            } else {
                0.0
            };
            rates[k] = value;
            incremental.update(k, value);
            let mut rebuilt = SumTree::new(len);
            rebuilt.rebuild(&rates);
            assert_eq!(incremental.total().to_bits(), rebuilt.total().to_bits());
            let target = rng.gen::<f64>() * incremental.total();
            assert_eq!(incremental.sample(target), rebuilt.sample(target));
        }
    }

    #[test]
    fn tree_never_selects_a_zero_rate_leaf() {
        let rates = [0.0, 3.0, 0.0, 0.0, 2.0, 0.0];
        let mut tree = SumTree::new(rates.len());
        tree.rebuild(&rates);
        // sweep targets across and beyond the total: only indices 1 and 4
        // may come back, and overshoot lands on the last positive leaf
        for step in 0..100 {
            let target = 5.5 * step as f64 / 99.0; // up to 10% beyond total
            let chosen = tree.sample(target).unwrap();
            assert!(chosen == 1 || chosen == 4, "target {target} chose {chosen}");
        }
        assert_eq!(tree.sample(7.0), Some(4));
        tree.rebuild(&[0.0; 6]);
        assert_eq!(tree.sample(0.0), None);
    }

    #[test]
    fn composition_rejection_matches_rate_proportions() {
        // rates spanning five binary orders of magnitude: empirical
        // frequencies must track rate proportions
        let rates = [8.0, 0.5, 0.0, 2.0, 0.25, 4.0];
        let mut cr = CompositionRejection::new(rates.len());
        cr.rebuild(&rates);
        let total: f64 = rates.iter().sum();
        assert!((cr.total() - total).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(11);
        let samples = 200_000;
        let mut counts = [0usize; 6];
        for _ in 0..samples {
            counts[cr.sample(&mut rng).unwrap()] += 1;
        }
        assert_eq!(counts[2], 0, "zero-rate transition selected");
        for (k, &c) in counts.iter().enumerate() {
            let expected = rates[k] / total;
            let observed = c as f64 / samples as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "index {k}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn composition_rejection_updates_move_rates_between_groups() {
        let mut cr = CompositionRejection::new(4);
        cr.rebuild(&[1.0, 1.0, 1.0, 1.0]);
        // push one rate across several magnitude buckets and back to zero
        for value in [1.0e3, 1.0e-3, 0.75, 0.0, 2.5] {
            cr.update(2, value);
            let expected = 3.0 + value;
            assert!(
                (cr.total() - expected).abs() < 1e-9 * expected.max(1.0),
                "total {} after update to {value}",
                cr.total()
            );
        }
        // sampling still only returns positive-rate indices after churn
        cr.update(0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let k = cr.sample(&mut rng).unwrap();
            assert!(k != 0, "zero-rate index sampled after update churn");
        }
        // all-zero rates: no selection
        cr.rebuild(&[0.0; 4]);
        assert_eq!(cr.sample(&mut rng), None);
        assert_eq!(cr.total(), 0.0);
    }

    #[test]
    fn composition_rejection_update_parity_with_rebuild() {
        // randomised churn: incremental updates must stay consistent with a
        // from-scratch rebuild (same totals up to refresh-bounded drift,
        // same support)
        let mut rng = StdRng::seed_from_u64(21);
        let len = 50;
        let mut rates = vec![0.0f64; len];
        let mut cr = CompositionRejection::new(len);
        cr.rebuild(&rates);
        for _ in 0..2000 {
            let k = (rng.gen::<u32>() as usize) % len;
            let magnitude = [0.0, 1e-6, 0.01, 1.0, 64.0][(rng.gen::<u32>() as usize) % 5];
            rates[k] = magnitude * (0.5 + rng.gen::<f64>());
            cr.update(k, rates[k]);
        }
        let mut reference = CompositionRejection::new(len);
        reference.rebuild(&rates);
        let exact: f64 = rates.iter().sum();
        assert!(
            (cr.total() - exact).abs() <= 1e-9 * exact.max(1.0),
            "incremental total {} vs exact {exact}",
            cr.total()
        );
        assert!((reference.total() - exact).abs() <= 1e-12 * exact.max(1.0));
    }

    #[test]
    fn rejection_counting_matches_the_plain_sample_stream() {
        // `sample_counting` must consume the RNG identically to `sample`
        // (the observability layer may not perturb runs) and must report
        // rejections on rate spreads wide enough to miss sometimes.
        let rates = [8.0, 0.5, 0.0, 2.0, 0.25, 4.0];
        let mut cr = CompositionRejection::new(rates.len());
        cr.rebuild(&rates);
        let mut plain_rng = StdRng::seed_from_u64(17);
        let mut counting_rng = StdRng::seed_from_u64(17);
        let mut rejections = 0u64;
        for _ in 0..5_000 {
            assert_eq!(
                cr.sample(&mut plain_rng),
                cr.sample_counting(&mut counting_rng, &mut rejections)
            );
        }
        assert!(rejections > 0, "wide rate spread never rejected");
    }

    #[test]
    fn exponent_buckets_bound_their_members() {
        for rate in [1e-300, 1e-9, 0.49, 0.5, 1.0, 1.5, 2.0, 1e9, 1e300] {
            let bucket = exponent_bucket(rate);
            let bound = bucket_bound(bucket);
            assert!(
                rate < bound || bound == f64::MAX,
                "rate {rate} bound {bound}"
            );
            if bucket > 0 && bucket < 2046 {
                assert!(rate >= bound / 2.0, "rate {rate} below half-bound");
            }
        }
    }

    #[test]
    fn selector_facade_dispatches_all_strategies() {
        let rates = [0.5, 0.0, 1.5, 1.0];
        let mut rng = StdRng::seed_from_u64(5);
        for strategy in [
            SelectionStrategy::LinearScan,
            SelectionStrategy::SumTree,
            SelectionStrategy::CompositionRejection,
        ] {
            let mut selector = Selector::new(strategy, rates.len());
            selector.rebuild(&[0.5, 0.0, 0.5, 1.0]);
            selector.update(2, 1.5);
            let total: f64 = rates.iter().sum();
            for _ in 0..200 {
                let k = selector.choose(&rates, total, &mut rng).unwrap();
                assert!(k != 1, "{strategy}: zero-rate transition selected");
            }
        }
    }
}
