//! Stochastic simulation of (imprecise) population CTMCs.
//!
//! The mean-field theorems of Bortolussi & Gast (DSN 2016) are convergence
//! statements about finite-`N` stochastic systems; this crate provides the
//! finite-`N` side of the comparison. It contains
//!
//! * [`policy`] — *parameter policies* `ϑ(t)`: the adversarial/environmental
//!   signals of the imprecise scenario, including the two policies used in
//!   Figure 6 of the paper (a state-feedback hysteresis policy and a
//!   random-jump policy) as well as constant and piecewise-constant signals;
//! * [`gillespie`] — an exact stochastic simulation algorithm (SSA) for
//!   population models at a finite scale `N`, driven by an arbitrary
//!   policy. When transitions report their species supports (compiled DSL
//!   rates always do, including guarded/piecewise ones; native closures
//!   via `with_species_support`), the simulator precomputes a transition
//!   dependency graph and only re-evaluates the propensities an event can
//!   have changed — select the behaviour with
//!   [`PropensityStrategy`](gillespie::PropensityStrategy) (the default
//!   `DependencyGraph` is bit-identical to the `FullRescan` reference);
//! * [`selection`] — sub-linear transition selection for models with many
//!   transitions: a binary partial-sum tree (`O(log K)`) and a
//!   composition-rejection sampler (`O(1)` expected), selectable via
//!   [`SelectionStrategy`](selection::SelectionStrategy) next to the
//!   `O(K)` roulette-scan reference;
//! * [`tauleap`] — approximate explicit τ-leaping for the large-`N`
//!   regime: adaptive Cao–Gillespie step selection, Poisson firing
//!   counts, a negative-population guard and an exact-SSA fallback,
//!   selected per run via
//!   [`SimulationAlgorithm`](gillespie::SimulationAlgorithm) on
//!   [`SimulationOptions`](gillespie::SimulationOptions);
//! * [`ensemble`] — parallel replication of simulations with summary
//!   statistics on a common time grid (scoped worker threads via
//!   [`EnsembleOptions::threads`](ensemble::EnsembleOptions::threads));
//! * [`lockstep`] — lockstep τ-leap replication batching: groups of
//!   replications advance together and share one batched SoA propensity
//!   rescan per round (`RateProgram::eval_batch_into`), bit-identical to
//!   running each replication alone;
//! * [`stats`] — running statistics and empirical summaries;
//! * [`steady`] — sampling of the stationary regime (burn-in plus thinning),
//!   used to compare the empirical steady state against the Birkhoff centre.
//!
//! Both engines carry an optional observability bundle
//! ([`Simulator::with_obs`](gillespie::Simulator::with_obs)): per-run
//! [`SimCounters`](gillespie::SimCounters) — propensity re-evaluations vs.
//! dependency-graph skips, composition–rejection rejections, τ-halvings,
//! fallback bursts, Poisson draws — flush into `mfu-obs` metrics, and run
//! summaries go to its JSONL tracer. The counters are maintained in plain
//! run-locals, so trajectories are bit-identical with observability on or
//! off, and every [`SimulationRun`](gillespie::SimulationRun) exposes them
//! (plus the `Auto`-resolved strategies) even when observability is
//! disabled.
//!
//! # Example
//!
//! Simulate the bike-sharing station under a constant parameter:
//!
//! ```
//! use mfu_ctmc::params::{Interval, ParamSpace};
//! use mfu_ctmc::population::PopulationModel;
//! use mfu_ctmc::transition::TransitionClass;
//! use mfu_num::StateVec;
//! use mfu_sim::gillespie::{SimulationOptions, Simulator};
//! use mfu_sim::policy::ConstantPolicy;
//!
//! let space = ParamSpace::new(vec![
//!     ("arrival", Interval::new(0.5, 1.5)?),
//!     ("return", Interval::new(0.5, 1.5)?),
//! ])?;
//! let model = PopulationModel::builder(1, space)
//!     .transition(TransitionClass::new("pickup", [-1.0], |x: &StateVec, th: &[f64]| {
//!         if x[0] > 0.0 { th[0] } else { 0.0 }
//!     }))
//!     .transition(TransitionClass::new("return", [1.0], |x: &StateVec, th: &[f64]| {
//!         if x[0] < 1.0 { th[1] } else { 0.0 }
//!     }))
//!     .build()?;
//!
//! let simulator = Simulator::new(model, 100)?;
//! let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
//! let run = simulator.simulate(&[50], &mut policy, &SimulationOptions::new(10.0), 42)?;
//! assert!(run.trajectory().last_state()[0] >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod error;

pub mod ensemble;
pub mod gillespie;
pub mod lockstep;
pub mod policy;
pub mod selection;
pub mod stats;
pub mod steady;
pub mod tauleap;

pub use error::SimError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, SimError>;
