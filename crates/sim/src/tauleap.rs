//! Explicit τ-leaping: approximate stochastic simulation for large `N`.
//!
//! The exact Gillespie SSA pays one event per CTMC jump, so the cost of a
//! run grows linearly with the population scale `N` — exactly wrong for
//! validating the paper's mean-field bounds, which are statements about
//! `N → ∞` and only get tight around `N ≈ 10⁵–10⁶`. τ-leaping (Gillespie
//! 2001) freezes the propensities over a step of length `τ` and fires
//! every transition class a Poisson-distributed number of times at once:
//!
//! > `K_k ~ Poisson(a_k(x) · τ)`, `x ← x + Σ_k ν_k · K_k / N`
//!
//! turning millions of per-event updates into a few hundred per-leap
//! updates whose cost is independent of `N`.
//!
//! # Step-size selection
//!
//! `τ` is chosen per leap with the Cao–Gillespie bound (*Efficient step
//! size selection for the tau-leaping simulation method*, J. Chem. Phys.
//! 124, 2006): for each species `i`, the net drift `μ_i = Σ_k ν_ik a_k`
//! and spread `σ²_i = Σ_k ν²_ik a_k` of its count must not move it by more
//! than `max(ε·c_i/g_i, 1)` within one leap, where `c_i` is the current
//! count, `ε` the accuracy knob ([`TauLeapOptions::epsilon`]) and `g_i`
//! the highest order of any reaction consuming species `i` — this bounds
//! the *relative change of every propensity* by roughly `ε`. Reaction
//! orders are taken from the rates' species supports (the support size,
//! clamped to `[1, 3]`, bounds the polynomial order of the mass-action
//! and affine-product rates the DSL lowers; rates with unknown support
//! get the conservative order 3).
//!
//! # Exactness guards
//!
//! Two mechanisms keep the approximation honest near boundaries:
//!
//! * **negative-population guard** — a leap whose aggregated firing
//!   counts would drive any count negative is rejected wholesale and
//!   retried with `τ/2` (fresh Poisson draws, so the retry is unbiased);
//! * **exact fallback** — whenever `τ` falls below
//!   [`TauLeapOptions::ssa_threshold`] multiples of the mean waiting time
//!   `1/Σa_k` (because the system is small, stiff, or parked on a
//!   boundary), leaping is not worth its bias and the engine executes a
//!   burst of [`TauLeapOptions::ssa_burst`] exact SSA steps instead, then
//!   resumes leaping. A model that never leaves the guarded regime
//!   therefore degrades to the exact algorithm rather than mis-simulating.
//!
//! Runs are deterministic in the seed (one RNG stream drives policy
//! queries, Poisson draws and fallback steps alike), but the stream
//! consumption differs from the exact engine's, so a τ-leap run is *not*
//! event-comparable to an exact run at the same seed — only
//! distributionally close (`O(ε)` bias on the means). Select the engine
//! via [`SimulationOptions::algorithm`] /
//! [`SimulationAlgorithm::TauLeap`](crate::gillespie::SimulationAlgorithm);
//! `ensemble`, `steady` and the `mfu run --algorithm tau-leap` CLI all
//! thread it through.

use mfu_ctmc::transition::accumulate_firings;
use mfu_guard::{BudgetTracker, Outcome, TruncationReason};
use mfu_num::ode::Trajectory;
use mfu_num::StateVec;
use rand::poisson;
use rand::rngs::StdRng;
use rand::Rng;

use mfu_obs::Field;

use crate::gillespie::{
    PropensityStrategy, Recorder, SimCounters, SimulationOptions, SimulationRun, Simulator,
};
use crate::policy::ParameterPolicy;
use crate::selection::{linear_select, SelectionStrategy};
use crate::{Result, SimError};

/// Tuning knobs of the explicit τ-leap engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauLeapOptions {
    /// Relative propensity-change budget per leap (the `ε` of the
    /// Cao–Gillespie step-size bound). Smaller is more accurate and
    /// slower; `0.03` is the literature's default operating point.
    pub epsilon: f64,
    /// Exact-fallback threshold, in multiples of the mean waiting time
    /// `1/Σa_k`: when the selected (or guard-halved) `τ` drops below
    /// `ssa_threshold / Σa_k`, the engine runs exact SSA steps instead of
    /// leaping. The literature suggests a small multiple of 1; 10 is
    /// conservative.
    pub ssa_threshold: f64,
    /// Number of exact SSA steps executed per fallback burst before
    /// τ-selection is retried.
    pub ssa_burst: usize,
    /// Escalation ladder: once the run has accumulated this many τ halvings
    /// in total, the engine *demotes itself to exact SSA* for the remainder
    /// of the run instead of thrashing (every subsequent step goes through
    /// the fallback path). Halvings this frequent mean the leap
    /// approximation is not paying for itself on this model/regime.
    pub demote_after_halvings: u64,
}

impl TauLeapOptions {
    /// Creates options with the given `epsilon` and default guards.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "tau-leap epsilon must lie in (0, 1)"
        );
        TauLeapOptions {
            epsilon,
            ssa_threshold: 10.0,
            ssa_burst: 100,
            demote_after_halvings: 256,
        }
    }

    /// Sets the exact-fallback threshold (multiples of `1/Σa_k`).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not positive and finite.
    #[must_use]
    pub fn ssa_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "ssa threshold must be positive"
        );
        self.ssa_threshold = threshold;
        self
    }

    /// Sets the exact-burst length (values below 1 are treated as 1).
    #[must_use]
    pub fn ssa_burst(mut self, steps: usize) -> Self {
        self.ssa_burst = steps.max(1);
        self
    }

    /// Sets the cumulative-halving count after which the run demotes to
    /// exact SSA (values below 1 are treated as 1).
    #[must_use]
    pub fn demote_after_halvings(mut self, halvings: u64) -> Self {
        self.demote_after_halvings = halvings.max(1);
        self
    }
}

impl Default for TauLeapOptions {
    /// The literature's default operating point: `ε = 0.03`, fallback
    /// below `10/Σa_k`, 100-step exact bursts.
    fn default() -> Self {
        TauLeapOptions::new(0.03)
    }
}

/// Highest order of any reaction *consuming* each species, bounded via
/// the rates' species supports (see the module docs); species nothing
/// consumes keep the neutral order 1. Shared with the lockstep ensemble
/// engine (`crate::lockstep`), which must select identical step sizes.
pub(crate) fn reactant_orders(simulator: &Simulator) -> Vec<f64> {
    let mut orders = vec![1.0_f64; simulator.model().dim()];
    for (k, class) in simulator.model().transitions().iter().enumerate() {
        let order = class
            .species_support()
            .map_or(3.0, |support| support.len().clamp(1, 3) as f64);
        for &(i, j) in &simulator.sparse_jumps()[k] {
            if j < 0 {
                orders[i] = orders[i].max(order);
            }
        }
    }
    orders
}

/// The Cao–Gillespie step size: the largest `τ` keeping every species'
/// expected move and spread within `max(ε·c_i/g_i, 1)` counts. Returns
/// `f64::INFINITY` when no propensity can change the state (the caller's
/// horizon then caps the step).
pub(crate) fn select_tau(
    epsilon: f64,
    counts: &[i64],
    rates: &[f64],
    sparse_jumps: &[Vec<(usize, i64)>],
    orders: &[f64],
    mu: &mut [f64],
    sigma2: &mut [f64],
) -> f64 {
    mu.fill(0.0);
    sigma2.fill(0.0);
    for (jump, &rate) in sparse_jumps.iter().zip(rates) {
        if rate > 0.0 {
            for &(i, j) in jump {
                let j = j as f64;
                mu[i] += j * rate;
                sigma2[i] += j * j * rate;
            }
        }
    }
    let mut tau = f64::INFINITY;
    for (i, (&s2, &m)) in sigma2.iter().zip(mu.iter()).enumerate() {
        if s2 <= 0.0 {
            continue;
        }
        let bound = (epsilon * counts[i] as f64 / orders[i]).max(1.0);
        let by_mean = if m == 0.0 {
            f64::INFINITY
        } else {
            bound / m.abs()
        };
        tau = tau.min(by_mean.min(bound * bound / s2));
    }
    tau
}

/// Queries the parameter policy at `(t, x)` and validates or clamps its
/// output against the model's parameter space — the same contract the
/// exact engine applies at every event.
pub(crate) fn query_theta(
    simulator: &Simulator,
    policy: &mut dyn ParameterPolicy,
    options: &SimulationOptions,
    t: f64,
    x: &StateVec,
    events: u64,
    rng: &mut StdRng,
) -> Result<Vec<f64>> {
    let mut theta_raw = policy.value(t, x, rng);
    if let Some(plan) = simulator.fault_plan() {
        plan.perturb_params(events, &mut theta_raw);
    }
    if simulator.model().params().contains(&theta_raw) {
        Ok(theta_raw)
    } else if options.strict_policy {
        Err(SimError::PolicyOutOfRange { time: t })
    } else {
        Ok(simulator.model().params().clamp(&theta_raw)?)
    }
}

/// Runs one τ-leap replication. Called by
/// [`Simulator::simulate_with_rng`] after input validation when
/// [`SimulationOptions::algorithm`] selects
/// [`SimulationAlgorithm::TauLeap`](crate::gillespie::SimulationAlgorithm).
pub(crate) fn simulate_tau_leap(
    simulator: &Simulator,
    initial_counts: &[i64],
    policy: &mut dyn ParameterPolicy,
    options: &SimulationOptions,
    leap: &TauLeapOptions,
    rng: &mut StdRng,
) -> Result<SimulationRun> {
    policy.reset();

    let model = simulator.model();
    let dim = model.dim();
    let n_transitions = model.transitions().len();
    let scale = simulator.scale() as f64;
    let sparse_jumps = simulator.sparse_jumps();
    let orders = reactant_orders(simulator);

    let mut counts = initial_counts.to_vec();
    let mut x: StateVec = counts.iter().map(|&c| c as f64 / scale).collect();
    let mut t = 0.0_f64;
    let mut steps = 0usize;
    // Run-local observability counters (see `SimCounters`): maintained
    // unconditionally, flushed once after the run, never touching the RNG
    // or any float — the run is bit-identical with observability on or off.
    let mut tally = SimCounters::default();
    let tracer = simulator.obs().tracer.clone();

    let mut rates = vec![0.0_f64; n_transitions];
    let mut mu = vec![0.0_f64; dim];
    let mut sigma2 = vec![0.0_f64; dim];
    let mut firings = vec![0_i64; n_transitions];
    let mut delta = vec![0_i64; dim];

    let mut trajectory = Trajectory::new(dim);
    trajectory.push(0.0, x.clone())?;
    let mut recorder = Recorder::new(options);

    // Budget enforcement mirrors the exact engine: tripped caps break out
    // with a truncated outcome, preserving the prefix. The demotion flag
    // implements the escalation ladder — once set, every remaining step
    // goes through the exact fallback path.
    let max_events = options.effective_max_events();
    let mut tracker = BudgetTracker::start(&options.budget);
    let mut outcome = Outcome::Completed;
    let mut demoted = false;

    // Constant policies are queried once, like in the exact engine. Policy
    // faults disable the short-circuit so injected jumps are observed.
    let policy_constant = policy.is_constant()
        && !simulator
            .fault_plan()
            .is_some_and(mfu_guard::FaultPlan::has_policy_faults);
    let mut theta: Vec<f64> = Vec::new();
    let mut theta_known = false;

    'run: loop {
        // Query the policy at the leap's start instant.
        if !(theta_known && policy_constant) {
            theta = query_theta(simulator, policy, options, t, &x, steps as u64, rng)?;
            theta_known = true;
        }

        // Propensities are always fully rescanned: a leap is O(K) anyway.
        let mut total = 0.0_f64;
        for (k, rate) in rates.iter_mut().enumerate() {
            *rate = simulator.eval_rate(k, &x, &theta, t, steps as u64)?;
            total += *rate;
        }
        tally.propensity_evals += n_transitions as u64;
        if total <= 0.0 {
            break 'run;
        }

        let mut tau = select_tau(
            leap.epsilon,
            &counts,
            &rates,
            sparse_jumps,
            &orders,
            &mut mu,
            &mut sigma2,
        )
        .min(options.t_end - t);
        let threshold = leap.ssa_threshold / total;

        // Guarded leap: reject-and-halve on negative populations, exact
        // burst once τ is no longer worth its bias (or permanently, once
        // the halving ladder demoted the run to exact SSA).
        loop {
            if tracker.expired() {
                outcome = Outcome::Truncated {
                    reason: TruncationReason::WallClock,
                    reached_t: t,
                };
                break 'run;
            }
            if demoted || tau < threshold.min(options.t_end - t) {
                // ---- exact fallback burst -------------------------------
                tally.tau_fallback_bursts += 1;
                if tracer.is_enabled() {
                    tracer.event(
                        "tau_fallback_burst",
                        &[
                            ("t", Field::F64(t)),
                            ("tau", Field::F64(tau)),
                            ("threshold", Field::F64(threshold)),
                            ("burst", Field::U64(leap.ssa_burst as u64)),
                        ],
                    );
                }
                for burst_step in 0..leap.ssa_burst {
                    // Non-constant policies are re-queried per exact step
                    // (matching the exact engine's event-level resolution);
                    // the leap start already queried for step 0.
                    if burst_step > 0 && !policy_constant {
                        theta = query_theta(simulator, policy, options, t, &x, steps as u64, rng)?;
                    }
                    let mut burst_total = 0.0_f64;
                    for (k, rate) in rates.iter_mut().enumerate() {
                        *rate = simulator.eval_rate(k, &x, &theta, t, steps as u64)?;
                        burst_total += *rate;
                    }
                    tally.propensity_evals += n_transitions as u64;
                    if burst_total <= 0.0 {
                        break 'run;
                    }
                    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let dt = -u.ln() / burst_total;
                    if t + dt >= options.t_end {
                        break 'run;
                    }
                    t += dt;
                    let Some(chosen) = linear_select(&rates, rng.gen::<f64>() * burst_total) else {
                        break 'run;
                    };
                    if mfu_ctmc::transition::apply_firings(&mut counts, &sparse_jumps[chosen], 1) {
                        for &(i, _) in &sparse_jumps[chosen] {
                            x[i] = counts[i] as f64 / scale;
                        }
                    }
                    steps += 1;
                    tally.tau_fallback_steps += 1;
                    // `t > last` guards against a stalled clock when a rate
                    // explosion drives `dt` below the ulp of `t`.
                    if recorder.should_record(steps, t) && t > trajectory.last_time() {
                        trajectory.push(t, x.clone())?;
                    }
                    if steps >= max_events {
                        outcome = Outcome::Truncated {
                            reason: TruncationReason::MaxEvents,
                            reached_t: t,
                        };
                        break 'run;
                    }
                    if tracker.expired() {
                        outcome = Outcome::Truncated {
                            reason: TruncationReason::WallClock,
                            reached_t: t,
                        };
                        break 'run;
                    }
                }
                break; // burst done: reselect τ from the new state
            }

            // ---- attempt one leap of length τ ---------------------------
            for (k, firing) in firings.iter_mut().enumerate() {
                *firing = if rates[k] > 0.0 {
                    tally.poisson_draws += 1;
                    poisson::sample(rng, rates[k] * tau) as i64
                } else {
                    0
                };
            }
            delta.fill(0);
            for (jump, &firing) in sparse_jumps.iter().zip(firings.iter()) {
                if firing > 0 {
                    accumulate_firings(&mut delta, jump, firing);
                }
            }
            if counts.iter().zip(delta.iter()).any(|(&c, &d)| c + d < 0) {
                // negative-population guard: reject wholesale, halve τ
                tally.tau_halvings += 1;
                if tracer.is_enabled() {
                    tracer.event(
                        "tau_halved",
                        &[("t", Field::F64(t)), ("tau", Field::F64(tau / 2.0))],
                    );
                }
                if let Some(cap) = options.budget.max_tau_halvings {
                    if tally.tau_halvings >= cap {
                        outcome = Outcome::Truncated {
                            reason: TruncationReason::MaxTauHalvings,
                            reached_t: t,
                        };
                        break 'run;
                    }
                }
                if tally.tau_halvings >= leap.demote_after_halvings {
                    // Escalation ladder: halvings this frequent mean the
                    // leap approximation is thrashing — run exact SSA for
                    // the rest of the run instead.
                    demoted = true;
                    tally.tau_demotions = 1;
                    if tracer.is_enabled() {
                        tracer.event(
                            "tau_demoted",
                            &[
                                ("t", Field::F64(t)),
                                ("halvings", Field::U64(tally.tau_halvings)),
                            ],
                        );
                    }
                    continue;
                }
                tau /= 2.0;
                continue;
            }
            for (i, &d) in delta.iter().enumerate() {
                if d != 0 {
                    counts[i] += d;
                    x[i] = counts[i] as f64 / scale;
                }
            }
            t += tau;
            steps += 1;
            tally.tau_leap_steps += 1;
            if recorder.should_record(steps, t) && t > trajectory.last_time() {
                trajectory.push(t, x.clone())?;
            }
            if steps >= max_events {
                outcome = Outcome::Truncated {
                    reason: TruncationReason::MaxEvents,
                    reached_t: t,
                };
                break 'run;
            }
            if let Some(cap) = options.budget.max_leap_steps {
                if tally.tau_leap_steps >= cap {
                    outcome = Outcome::Truncated {
                        reason: TruncationReason::MaxLeapSteps,
                        reached_t: t,
                    };
                    break 'run;
                }
            }
            if t >= options.t_end {
                break 'run;
            }
            break; // leap accepted: back to τ selection
        }
    }

    // Completed runs pin the horizon point; truncated runs pin the state
    // actually reached (see the exact engine).
    let pin_time = match outcome {
        Outcome::Completed => options.t_end,
        Outcome::Truncated { reached_t, .. } => reached_t,
    };
    if pin_time > trajectory.last_time() {
        trajectory.push(pin_time, x.clone())?;
    }

    tally.budget_checks = tracker.checks();
    tally.events_fired = steps as u64;
    tally.flush_to(&simulator.obs().metrics);
    if tracer.is_enabled() {
        tracer.event(
            "sim_run",
            &[
                ("algorithm", Field::Str("tau-leap")),
                ("epsilon", Field::F64(leap.epsilon)),
                ("t_end", Field::F64(options.t_end)),
                ("events", Field::U64(tally.events_fired)),
                ("tau_leap_steps", Field::U64(tally.tau_leap_steps)),
                ("tau_halvings", Field::U64(tally.tau_halvings)),
                ("tau_fallback_bursts", Field::U64(tally.tau_fallback_bursts)),
                ("tau_fallback_steps", Field::U64(tally.tau_fallback_steps)),
                ("poisson_draws", Field::U64(tally.poisson_draws)),
                ("tau_demotions", Field::U64(tally.tau_demotions)),
                ("outcome", Field::Str(&outcome.to_string())),
            ],
        );
    }

    // τ-leap ignores the configured selection/propensity strategies: it
    // rescans fully per leap and linear-selects inside fallback bursts.
    Ok(SimulationRun::from_parts(
        trajectory,
        steps,
        counts,
        tally,
        SelectionStrategy::LinearScan,
        PropensityStrategy::FullRescan,
        outcome,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gillespie::{SimulationAlgorithm, SimulationOptions, Simulator};
    use crate::policy::ConstantPolicy;
    use mfu_ctmc::params::{Interval, ParamSpace};
    use mfu_ctmc::population::PopulationModel;
    use mfu_ctmc::transition::TransitionClass;

    /// SIR with annotated supports so the reactant orders are sharp.
    fn sir_model() -> PopulationModel {
        let params = ParamSpace::new(vec![("contact", Interval::new(1.0, 10.0).unwrap())]).unwrap();
        PopulationModel::builder(3, params)
            .variable_names(vec!["S", "I", "R"])
            .transition(
                TransitionClass::new("infect", [-1.0, 1.0, 0.0], |x: &StateVec, th: &[f64]| {
                    (0.1 + th[0] * x[1]) * x[0]
                })
                .with_species_support(vec![0, 1]),
            )
            .transition(
                TransitionClass::new("recover", [0.0, -1.0, 1.0], |x: &StateVec, _: &[f64]| {
                    5.0 * x[1]
                })
                .with_species_support(vec![1]),
            )
            .transition(
                TransitionClass::new("wane", [1.0, 0.0, -1.0], |x: &StateVec, _: &[f64]| {
                    1.0 * x[2]
                })
                .with_species_support(vec![2]),
            )
            .build()
            .unwrap()
    }

    fn death_model() -> PopulationModel {
        let params = ParamSpace::single("rate", 1.0, 1.0).unwrap();
        PopulationModel::builder(1, params)
            .transition(
                TransitionClass::new("die", [-1.0], |x: &StateVec, th: &[f64]| th[0] * x[0])
                    .with_species_support(vec![0]),
            )
            .build()
            .unwrap()
    }

    fn leap_options(t_end: f64, epsilon: f64) -> SimulationOptions {
        SimulationOptions::new(t_end).tau_leap(TauLeapOptions::new(epsilon))
    }

    #[test]
    fn options_validate_and_default() {
        let defaults = TauLeapOptions::default();
        assert_eq!(defaults.epsilon, 0.03);
        assert!(defaults.ssa_threshold > 0.0);
        assert!(defaults.ssa_burst >= 1);
        assert_eq!(TauLeapOptions::new(0.1).ssa_burst(0).ssa_burst, 1);
        assert!(std::panic::catch_unwind(|| TauLeapOptions::new(0.0)).is_err());
        assert!(std::panic::catch_unwind(|| TauLeapOptions::new(1.0)).is_err());
        assert!(std::panic::catch_unwind(|| TauLeapOptions::new(0.1).ssa_threshold(0.0)).is_err());
    }

    #[test]
    fn algorithm_knob_displays_and_defaults_to_exact() {
        let options = SimulationOptions::new(1.0);
        assert_eq!(options.algorithm, SimulationAlgorithm::Exact);
        assert_eq!(SimulationAlgorithm::Exact.to_string(), "exact");
        assert_eq!(
            SimulationAlgorithm::TauLeap(TauLeapOptions::new(0.03)).to_string(),
            "tau-leap:0.03"
        );
    }

    #[test]
    fn reactant_orders_follow_supports() {
        let simulator = Simulator::new(sir_model(), 100).unwrap();
        // S is consumed by the order-2 infection, I by the order-1
        // recovery, R by the order-1 waning
        assert_eq!(reactant_orders(&simulator), vec![2.0, 1.0, 1.0]);
    }

    #[test]
    fn tau_shrinks_with_epsilon_and_grows_with_population() {
        let tau_at = |scale: usize, counts: &[i64], epsilon: f64| {
            let simulator = Simulator::new(sir_model(), scale).unwrap();
            let theta = [5.0];
            let x: StateVec = counts.iter().map(|&c| c as f64 / scale as f64).collect();
            let rates: Vec<f64> = (0..3)
                .map(|k| simulator.eval_rate(k, &x, &theta, 0.0, 0).unwrap())
                .collect();
            let mut mu = vec![0.0; 3];
            let mut sigma2 = vec![0.0; 3];
            select_tau(
                epsilon,
                counts,
                &rates,
                simulator.sparse_jumps(),
                &reactant_orders(&simulator),
                &mut mu,
                &mut sigma2,
            )
        };
        // all compartments populated, so no species sits on the ±1-count
        // floor of the bound and ε actually steers the step
        let coarse = tau_at(1000, &[600, 300, 100], 0.1);
        let fine = tau_at(1000, &[600, 300, 100], 0.01);
        assert!(fine < coarse, "eps 0.01 gave {fine}, eps 0.1 gave {coarse}");
        // same densities at 10× the scale: the relative bound is scale
        // free, so τ must not degrade as the population grows (that is the
        // whole point of leaping)
        let large = tau_at(10_000, &[6000, 3000, 1000], 0.1);
        assert!(
            large >= coarse * 0.5,
            "τ degraded at scale: {large} vs {coarse}"
        );
    }

    #[test]
    fn deterministic_given_seed_and_horizon_reached() {
        let simulator = Simulator::new(sir_model(), 50_000).unwrap();
        let options = leap_options(2.0, 0.05);
        let run = |seed: u64| {
            let mut policy = ConstantPolicy::new(vec![5.0]);
            simulator
                .simulate(&[35_000, 15_000, 0], &mut policy, &options, seed)
                .unwrap()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.final_counts(), b.final_counts());
        for ((ta, sa), (tb, sb)) in a.trajectory().iter().zip(b.trajectory().iter()) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(sa.as_slice(), sb.as_slice());
        }
        assert!((a.trajectory().last_time() - 2.0).abs() < 1e-12);
        // a leap run is far cheaper than one event per jump: the exact
        // run at this scale would take hundreds of thousands of events
        assert!(a.events() < 20_000, "{} steps", a.events());
        let c = run(10);
        assert_ne!(a.final_counts(), c.final_counts());
    }

    #[test]
    fn counts_stay_non_negative_and_absorb_at_extinction() {
        // pure death from a small population with a coarse epsilon: the
        // Poisson draws overshoot constantly, so this exercises both the
        // halving guard and the exact fallback at the boundary
        let simulator = Simulator::new(death_model(), 50).unwrap();
        let options = SimulationOptions::new(1_000.0)
            .tau_leap(TauLeapOptions::new(0.5).ssa_threshold(5.0).ssa_burst(10));
        for seed in 0..10 {
            let mut policy = ConstantPolicy::new(vec![1.0]);
            let run = simulator
                .simulate(&[50], &mut policy, &options, seed)
                .unwrap();
            assert_eq!(run.final_counts(), &[0], "seed {seed}");
            for (_, state) in run.trajectory().iter() {
                assert!(state[0] >= 0.0, "seed {seed}: negative population");
            }
            assert!((run.trajectory().last_time() - 1_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn conservation_holds_across_leaps() {
        let simulator = Simulator::new(sir_model(), 100_000).unwrap();
        let options = leap_options(3.0, 0.03);
        let mut policy = ConstantPolicy::new(vec![5.0]);
        let run = simulator
            .simulate(&[70_000, 30_000, 0], &mut policy, &options, 4)
            .unwrap();
        assert_eq!(run.final_counts().iter().sum::<i64>(), 100_000);
        assert!(run.final_counts().iter().all(|&c| c >= 0));
    }

    #[test]
    fn run_counters_track_leap_internals() {
        use crate::gillespie::PropensityStrategy;
        use crate::selection::SelectionStrategy;

        // Well-conditioned SIR at large scale: every step is a clean leap.
        let simulator = Simulator::new(sir_model(), 100_000).unwrap();
        let mut policy = ConstantPolicy::new(vec![5.0]);
        let run = simulator
            .simulate(
                &[70_000, 30_000, 0],
                &mut policy,
                &leap_options(3.0, 0.03),
                4,
            )
            .unwrap();
        let c = run.counters();
        assert_eq!(c.events_fired, run.events() as u64);
        assert_eq!(c.tau_leap_steps + c.tau_fallback_steps, c.events_fired);
        assert!(
            c.poisson_draws >= c.tau_leap_steps,
            "draws per accepted leap"
        );
        assert_eq!(c.tau_halvings, 0, "well-conditioned SIR halved tau");
        assert_eq!(c.propensity_skips, 0);
        assert_eq!(run.resolved_selection(), SelectionStrategy::LinearScan);
        assert_eq!(run.resolved_propensity(), PropensityStrategy::FullRescan);

        // Boundary-parked pure death: the exact fallback must engage.
        let death = Simulator::new(death_model(), 50).unwrap();
        let options = SimulationOptions::new(1_000.0)
            .tau_leap(TauLeapOptions::new(0.5).ssa_threshold(5.0).ssa_burst(10));
        let mut policy = ConstantPolicy::new(vec![1.0]);
        let run = death.simulate(&[50], &mut policy, &options, 0).unwrap();
        let c = run.counters();
        assert!(
            c.tau_fallback_bursts > 0,
            "no fallback burst at the boundary"
        );
        assert!(c.tau_fallback_steps > 0);
    }

    #[test]
    fn strict_policy_and_budget_contracts_match_the_exact_engine() {
        let simulator = Simulator::new(sir_model(), 1000).unwrap();
        let mut policy = ConstantPolicy::new(vec![99.0]); // outside [1, 10]
        let err = simulator
            .simulate(&[700, 300, 0], &mut policy, &leap_options(1.0, 0.03), 1)
            .unwrap_err();
        assert!(matches!(err, SimError::PolicyOutOfRange { .. }));
        let mut policy = ConstantPolicy::new(vec![5.0]);
        let run = simulator
            .simulate(
                &[700, 300, 0],
                &mut policy,
                &leap_options(1.0, 0.03).max_events(3),
                1,
            )
            .unwrap();
        assert_eq!(run.events(), 3, "the partial run keeps the prefix");
        assert!(matches!(
            run.outcome(),
            mfu_guard::Outcome::Truncated {
                reason: mfu_guard::TruncationReason::MaxEvents,
                ..
            }
        ));
        assert!(run.trajectory().last_time() < 1.0);
    }

    #[test]
    fn record_interval_bounds_trajectory_growth() {
        let simulator = Simulator::new(sir_model(), 100_000).unwrap();
        let options = leap_options(3.0, 0.01).record_interval(0.5);
        let mut policy = ConstantPolicy::new(vec![5.0]);
        let run = simulator
            .simulate(&[70_000, 30_000, 0], &mut policy, &options, 8)
            .unwrap();
        assert!(
            run.trajectory().len() <= 10,
            "{} points recorded",
            run.trajectory().len()
        );
    }
}
