//! Parallel ensembles of stochastic simulations.
//!
//! Mean-field accuracy claims ("the stochastic system stays close to the
//! deterministic limit as `N` grows") are checked against the *distribution*
//! of the stochastic process, which requires many independent replications.
//! This module exploits the machine along both axes:
//!
//! * **across cores** — replications are distributed over scoped worker
//!   threads; set the worker count with [`EnsembleOptions::threads`]
//!   (`0` means one thread per available core, and the count is clamped
//!   to the number of replications, so oversubscribed workers simply
//!   idle);
//! * **within a core** — τ-leap ensembles additionally advance each
//!   worker's replications in *lockstep* ([`crate::lockstep`]), sharing
//!   one batched SoA propensity rescan per round across all of the
//!   worker's still-running trajectories. The batched rescan is
//!   bit-identical to the scalar one, so summaries do not depend on
//!   [`EnsembleOptions::batch_propensities`]; switch it off to pin down
//!   the scalar reference when debugging.
//!
//! Either way every replication `k` keeps its own RNG stream seeded with
//! `base_seed.wrapping_add(k)`, so summaries are deterministic in the
//! seed for a fixed thread count.

use std::sync::Mutex;

use mfu_num::StateVec;

use crate::gillespie::{SimulationAlgorithm, SimulationOptions, SimulationRun, Simulator};
use crate::lockstep::simulate_tau_leap_lockstep;
use crate::policy::ParameterPolicy;
use crate::stats::RunningStats;
use crate::{Result, SimError};

/// Options controlling an ensemble of replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleOptions {
    /// Number of independent replications.
    pub replications: usize,
    /// Seed of the first replication; replication `k` uses
    /// `base_seed.wrapping_add(k)`, so seeds near `u64::MAX` wrap instead
    /// of overflowing.
    pub base_seed: u64,
    /// Number of worker threads (`0` means one thread per available core).
    /// Clamped to the number of replications: extra workers would own no
    /// replications and only add spawn overhead.
    pub threads: usize,
    /// Number of intervals of the common time grid used for the summary.
    pub grid_intervals: usize,
    /// Advance each worker's τ-leap replications in lockstep, batching
    /// their propensity rescans into shared SoA evaluations
    /// (`RateProgram::eval_batch_into`); see [`crate::lockstep`]. On by
    /// default; results are bit-identical either way, so this is purely a
    /// performance knob. Ignored by the exact (non-τ-leap) algorithm.
    pub batch_propensities: bool,
}

impl Default for EnsembleOptions {
    fn default() -> Self {
        EnsembleOptions {
            replications: 32,
            base_seed: 1,
            threads: 0,
            grid_intervals: 100,
            batch_propensities: true,
        }
    }
}

/// Per-time-point, per-coordinate summary of an ensemble of trajectories.
#[derive(Debug, Clone)]
pub struct EnsembleSummary {
    times: Vec<f64>,
    stats: Vec<Vec<RunningStats>>,
    final_states: Vec<StateVec>,
}

impl EnsembleSummary {
    /// The common time grid of the summary.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of replications that contributed.
    pub fn replications(&self) -> usize {
        self.final_states.len()
    }

    /// Mean state at grid index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn mean_at(&self, k: usize) -> StateVec {
        self.stats[k].iter().map(RunningStats::mean).collect()
    }

    /// Per-coordinate standard deviation at grid index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn std_dev_at(&self, k: usize) -> StateVec {
        self.stats[k].iter().map(RunningStats::std_dev).collect()
    }

    /// Per-coordinate statistics at grid index `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn stats_at(&self, k: usize) -> &[RunningStats] {
        &self.stats[k]
    }

    /// Number of replications that contributed a sample at grid index `k`.
    ///
    /// Grid sampling is all-or-error (a replication that cannot be sampled
    /// at some grid time fails the whole ensemble), so this always equals
    /// [`EnsembleSummary::replications`] — the accessor exists so tests can
    /// pin that invariant against the historical silent-drop bug.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn samples_at(&self, k: usize) -> usize {
        self.stats[k].first().map_or(0, RunningStats::count)
    }

    /// Final (horizon) states of every replication.
    pub fn final_states(&self) -> &[StateVec] {
        &self.final_states
    }

    /// Largest, over the grid, sup-norm distance between the ensemble mean and
    /// a reference trajectory sampled at the same times.
    ///
    /// # Errors
    ///
    /// Returns an error if `reference` yields vectors of the wrong dimension.
    pub fn max_mean_distance<F>(&self, mut reference: F) -> Result<f64>
    where
        F: FnMut(f64) -> StateVec,
    {
        let mut worst = 0.0_f64;
        for (k, &t) in self.times.iter().enumerate() {
            let mean = self.mean_at(k);
            let expected = reference(t);
            if expected.dim() != mean.dim() {
                return Err(SimError::invalid_input(
                    "reference trajectory has wrong dimension",
                ));
            }
            worst = worst.max(mean.distance_inf(&expected));
        }
        Ok(worst)
    }
}

/// Accumulator shared by the ensemble workers: per-grid-point statistics,
/// final states, and the first error observed (if any).
type EnsembleAccumulator = (Vec<Vec<RunningStats>>, Vec<StateVec>, Option<SimError>);

/// How many replications a worker advances per lockstep group: bounds the
/// number of concurrently live trajectories (each holds its recorded
/// states) while keeping the batch wide enough to fill the VM's small
/// register slab tier.
const LOCKSTEP_GROUP: usize = 64;

/// Folds one completed replication into a worker's local accumulators.
///
/// Grid sampling is all-or-error: a truncated run or a failed
/// `trajectory.at(t)` converts into a typed error instead of silently
/// shrinking a grid point's observation count (the historical `if let Ok`
/// bug).
fn absorb_run(
    run: &SimulationRun,
    times: &[f64],
    t_end: f64,
    local_stats: &mut [Vec<RunningStats>],
    local_finals: &mut Vec<StateVec>,
) -> Result<()> {
    // Grid sampling needs the full horizon: a prefix is not a meaningful
    // ensemble member, so a truncated replication converts back into a
    // typed error.
    if let mfu_guard::Outcome::Truncated { reason, reached_t } = run.outcome() {
        return Err(match reason {
            mfu_guard::TruncationReason::MaxEvents => SimError::EventBudgetExhausted {
                events: run.events(),
                reached: reached_t,
            },
            _ => SimError::Truncated {
                reason,
                events: run.events(),
                reached: reached_t,
            },
        });
    }
    let trajectory = run.trajectory();
    for (k, &t) in times.iter().enumerate() {
        let state = trajectory.at(t)?;
        for (i, &v) in state.as_slice().iter().enumerate() {
            local_stats[k][i].push(v);
        }
    }
    local_finals.push(trajectory.at(t_end)?);
    Ok(())
}

/// Runs `options.replications` independent simulations and summarises them.
///
/// `make_policy` builds a fresh policy per replication (policies are stateful
/// and must not be shared across replications). Replications are distributed
/// over `options.threads` worker threads.
///
/// # Errors
///
/// Returns the first simulation error encountered, or an invalid-input error
/// when `options.replications == 0`.
pub fn run_ensemble<F, P>(
    simulator: &Simulator,
    initial_counts: &[i64],
    make_policy: F,
    sim_options: &SimulationOptions,
    options: &EnsembleOptions,
) -> Result<EnsembleSummary>
where
    F: Fn() -> P + Sync,
    P: ParameterPolicy,
{
    if options.replications == 0 {
        return Err(SimError::invalid_input(
            "ensemble needs at least one replication",
        ));
    }
    if options.grid_intervals == 0 {
        return Err(SimError::invalid_input(
            "ensemble needs at least one grid interval",
        ));
    }

    let threads = if options.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        options.threads
    };
    let threads = threads.min(options.replications).max(1);

    let dim = simulator.model().dim();
    let grid_n = options.grid_intervals;
    let times: Vec<f64> = (0..=grid_n)
        .map(|k| sim_options.t_end * k as f64 / grid_n as f64)
        .collect();

    // Shared accumulators guarded by a mutex: merging is cheap relative to
    // simulation, so contention is negligible.
    let accumulator: Mutex<EnsembleAccumulator> = Mutex::new((
        vec![vec![RunningStats::new(); dim]; grid_n + 1],
        Vec::new(),
        None,
    ));

    // Lockstep grouping applies to τ-leap ensembles only: the exact engine
    // re-evaluates a few dependency-pruned rates per event, which has no
    // batched shape (every lane would need a rescan after every event of
    // every other lane).
    let lockstep = options.batch_propensities
        && matches!(sim_options.algorithm, SimulationAlgorithm::TauLeap(_));

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let accumulator = &accumulator;
            let make_policy = &make_policy;
            let times = &times;
            scope.spawn(move || {
                let mut local_stats = vec![vec![RunningStats::new(); dim]; grid_n + 1];
                let mut local_finals = Vec::new();
                let mut local_error: Option<SimError> = None;
                // The worker's replications, in the order the sequential
                // path runs them — lockstep groups absorb results in the
                // same order, so the Welford update sequence (and thus the
                // summary, bit for bit) does not depend on the grouping.
                let assigned: Vec<usize> =
                    (worker..options.replications).step_by(threads).collect();
                if lockstep {
                    'groups: for group in assigned.chunks(LOCKSTEP_GROUP) {
                        let policies: Vec<P> = group.iter().map(|_| make_policy()).collect();
                        let seeds: Vec<u64> = group
                            .iter()
                            .map(|&r| options.base_seed.wrapping_add(r as u64))
                            .collect();
                        let outcome = simulate_tau_leap_lockstep(
                            simulator,
                            initial_counts,
                            policies,
                            sim_options,
                            &seeds,
                        );
                        let results = match outcome {
                            Ok(results) => results,
                            Err(err) => {
                                local_error = Some(err);
                                break 'groups;
                            }
                        };
                        for result in results {
                            let absorbed = result.and_then(|run| {
                                absorb_run(
                                    &run,
                                    times,
                                    sim_options.t_end,
                                    &mut local_stats,
                                    &mut local_finals,
                                )
                            });
                            if let Err(err) = absorbed {
                                local_error = Some(err);
                                break 'groups;
                            }
                        }
                    }
                } else {
                    for &replication in &assigned {
                        let seed = options.base_seed.wrapping_add(replication as u64);
                        let mut policy = make_policy();
                        let sampled = simulator
                            .simulate(initial_counts, &mut policy, sim_options, seed)
                            .and_then(|run| {
                                absorb_run(
                                    &run,
                                    times,
                                    sim_options.t_end,
                                    &mut local_stats,
                                    &mut local_finals,
                                )
                            });
                        if let Err(err) = sampled {
                            local_error = Some(err);
                            break;
                        }
                    }
                }
                // A worker that panicked while holding the lock only leaves
                // behind merged partial statistics — recover the data
                // instead of propagating the poison as a second panic.
                let mut guard = accumulator
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for (k, row) in local_stats.iter().enumerate() {
                    for (i, cell) in row.iter().enumerate() {
                        guard.0[k][i].merge(cell);
                    }
                }
                guard.1.extend(local_finals);
                if guard.2.is_none() {
                    guard.2 = local_error;
                }
            });
        }
    });

    let (stats, final_states, error) = accumulator
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(err) = error {
        return Err(err);
    }
    Ok(EnsembleSummary {
        times,
        stats,
        final_states,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ConstantPolicy;
    use mfu_ctmc::params::{Interval, ParamSpace};
    use mfu_ctmc::population::PopulationModel;
    use mfu_ctmc::transition::TransitionClass;
    use mfu_num::ode::{Integrator, Rk4};

    fn bike_model() -> PopulationModel {
        let params = ParamSpace::new(vec![
            ("arrival", Interval::new(0.5, 2.0).unwrap()),
            ("return", Interval::new(0.5, 2.0).unwrap()),
        ])
        .unwrap();
        PopulationModel::builder(1, params)
            .variable_names(vec!["bikes"])
            .transition(TransitionClass::new(
                "pickup",
                [-1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] > 0.0 {
                        th[0]
                    } else {
                        0.0
                    }
                },
            ))
            .transition(TransitionClass::new(
                "return",
                [1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] < 1.0 {
                        th[1]
                    } else {
                        0.0
                    }
                },
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn ensemble_summary_has_expected_shape() {
        let sim = Simulator::new(bike_model(), 50).unwrap();
        let options = EnsembleOptions {
            replications: 8,
            base_seed: 3,
            threads: 2,
            grid_intervals: 10,
            ..Default::default()
        };
        let summary = run_ensemble(
            &sim,
            &[25],
            || ConstantPolicy::new(vec![1.0, 1.0]),
            &SimulationOptions::new(5.0),
            &options,
        )
        .unwrap();
        assert_eq!(summary.times().len(), 11);
        assert_eq!(summary.replications(), 8);
        assert_eq!(summary.mean_at(0).dim(), 1);
        assert_eq!(summary.stats_at(5).len(), 1);
        // initial state is deterministic
        assert!((summary.mean_at(0)[0] - 0.5).abs() < 1e-12);
        assert_eq!(summary.std_dev_at(0)[0], 0.0);
    }

    #[test]
    fn ensemble_mean_tracks_mean_field_ode() {
        // With asymmetric rates the mean field settles where pickup and
        // return balance; the ensemble mean at moderate N should be close.
        let model = bike_model();
        let sim = Simulator::new(model.clone(), 200).unwrap();
        let summary = run_ensemble(
            &sim,
            &[100],
            || ConstantPolicy::new(vec![1.5, 0.75]),
            &SimulationOptions::new(8.0).record_stride(4),
            &EnsembleOptions {
                replications: 16,
                base_seed: 11,
                threads: 4,
                grid_intervals: 20,
                ..Default::default()
            },
        )
        .unwrap();
        // The bike drift is discontinuous at the boundaries, so use a
        // fixed-step solver for the reference (no step rejection on the
        // sliding mode at x = 0).
        let ode = model.ode_for(vec![1.5, 0.75]);
        let reference = Rk4::with_step(1e-3)
            .integrate(&ode, 0.0, StateVec::from([0.5]), 8.0)
            .unwrap();
        let distance = summary
            .max_mean_distance(|t| reference.at(t).unwrap())
            .unwrap();
        assert!(
            distance < 0.12,
            "ensemble mean deviates from mean field by {distance}"
        );
    }

    #[test]
    fn every_grid_point_sees_every_replication() {
        // Regression for the silent sample drop: `trajectory.at(t)` errors
        // used to be swallowed by an `if let Ok`, so a failing grid sample
        // would shrink that point's observation count without any
        // indication. Sampling is now all-or-error, so every grid point
        // must carry exactly `replications` observations.
        let sim = Simulator::new(bike_model(), 40).unwrap();
        let options = EnsembleOptions {
            replications: 12,
            base_seed: 5,
            threads: 3,
            grid_intervals: 16,
            ..Default::default()
        };
        let summary = run_ensemble(
            &sim,
            &[20],
            || ConstantPolicy::new(vec![1.0, 1.0]),
            // record sparsely so grid sampling has to interpolate (the
            // regime where a dropped sample would have gone unnoticed)
            &SimulationOptions::new(6.0).record_stride(32),
            &options,
        )
        .unwrap();
        assert_eq!(summary.final_states().len(), 12);
        for k in 0..summary.times().len() {
            assert_eq!(
                summary.samples_at(k),
                12,
                "grid point {k} lost samples silently"
            );
        }
    }

    #[test]
    fn seeding_wraps_at_the_u64_boundary() {
        // replication seeds are base_seed.wrapping_add(k): a base near
        // u64::MAX must wrap around instead of panicking (debug builds
        // abort on overflowing `+`), and distinct replications must still
        // get distinct streams
        let sim = Simulator::new(bike_model(), 30).unwrap();
        let summary = run_ensemble(
            &sim,
            &[15],
            || ConstantPolicy::new(vec![1.0, 1.0]),
            &SimulationOptions::new(2.0),
            &EnsembleOptions {
                replications: 4,
                base_seed: u64::MAX - 1,
                threads: 2,
                grid_intervals: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(summary.replications(), 4);
        assert!(summary.std_dev_at(4)[0] >= 0.0);
    }

    #[test]
    fn ensemble_validates_options() {
        let sim = Simulator::new(bike_model(), 10).unwrap();
        let bad = EnsembleOptions {
            replications: 0,
            ..Default::default()
        };
        assert!(run_ensemble(
            &sim,
            &[5],
            || ConstantPolicy::new(vec![1.0, 1.0]),
            &SimulationOptions::new(1.0),
            &bad
        )
        .is_err());
        let bad = EnsembleOptions {
            grid_intervals: 0,
            replications: 2,
            ..Default::default()
        };
        assert!(run_ensemble(
            &sim,
            &[5],
            || ConstantPolicy::new(vec![1.0, 1.0]),
            &SimulationOptions::new(1.0),
            &bad
        )
        .is_err());
    }

    #[test]
    fn ensemble_propagates_simulation_errors() {
        let sim = Simulator::new(bike_model(), 10).unwrap();
        // policy outside the parameter box under strict checking
        let res = run_ensemble(
            &sim,
            &[5],
            || ConstantPolicy::new(vec![10.0, 1.0]),
            &SimulationOptions::new(1.0),
            &EnsembleOptions {
                replications: 4,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(matches!(res, Err(SimError::PolicyOutOfRange { .. })));
    }

    #[test]
    fn variance_shrinks_with_population_size() {
        let make = |n: usize| {
            let sim = Simulator::new(bike_model(), n).unwrap();
            let summary = run_ensemble(
                &sim,
                &[n as i64 / 2],
                || ConstantPolicy::new(vec![1.0, 1.0]),
                &SimulationOptions::new(4.0).record_stride(2),
                &EnsembleOptions {
                    replications: 24,
                    base_seed: 7,
                    threads: 4,
                    grid_intervals: 8,
                    ..Default::default()
                },
            )
            .unwrap();
            summary.std_dev_at(8)[0]
        };
        let sd_small = make(20);
        let sd_large = make(500);
        assert!(
            sd_large < sd_small,
            "std dev should shrink with N: N=20 gives {sd_small}, N=500 gives {sd_large}"
        );
    }

    /// Per-grid-point bit-identity of two summaries (means, deviations,
    /// and every final state).
    fn assert_summaries_bit_identical(a: &EnsembleSummary, b: &EnsembleSummary) {
        assert_eq!(a.times(), b.times());
        assert_eq!(a.replications(), b.replications());
        for k in 0..a.times().len() {
            let (ma, mb) = (a.mean_at(k), b.mean_at(k));
            let (sa, sb) = (a.std_dev_at(k), b.std_dev_at(k));
            for i in 0..ma.dim() {
                assert_eq!(ma[i].to_bits(), mb[i].to_bits(), "mean at ({k}, {i})");
                assert_eq!(sa[i].to_bits(), sb[i].to_bits(), "std dev at ({k}, {i})");
            }
        }
        for (fa, fb) in a.final_states().iter().zip(b.final_states()) {
            for (va, vb) in fa.as_slice().iter().zip(fb.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits(), "final state");
            }
        }
    }

    #[test]
    fn more_threads_than_replications_gives_identical_results() {
        // The clamp `threads.min(replications).max(1)` must leave the
        // extra workers idle without perturbing the per-replication seeds:
        // with one replication per worker the merge order is the only
        // degree of freedom, and a single replication removes even that.
        let sim = Simulator::new(bike_model(), 40).unwrap();
        let run_with = |threads: usize, replications: usize| {
            run_ensemble(
                &sim,
                &[20],
                || ConstantPolicy::new(vec![1.0, 1.0]),
                &SimulationOptions::new(3.0),
                &EnsembleOptions {
                    replications,
                    base_seed: 9,
                    threads,
                    grid_intervals: 6,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let narrow = run_with(1, 1);
        let wide = run_with(64, 1);
        assert_summaries_bit_identical(&narrow, &wide);
        // and with several replications the summary still carries exactly
        // `replications` members per grid point — no phantom contributions
        // from idle workers
        let summary = run_with(64, 3);
        assert_eq!(summary.replications(), 3);
        for k in 0..summary.times().len() {
            assert_eq!(summary.samples_at(k), 3);
        }
    }

    #[test]
    fn zero_replications_is_a_typed_error_not_a_hang() {
        let sim = Simulator::new(bike_model(), 10).unwrap();
        let res = run_ensemble(
            &sim,
            &[5],
            || ConstantPolicy::new(vec![1.0, 1.0]),
            &SimulationOptions::new(1.0),
            &EnsembleOptions {
                replications: 0,
                ..Default::default()
            },
        );
        assert!(matches!(res, Err(SimError::InvalidInput { .. })));
    }

    #[test]
    fn tau_leap_summaries_do_not_depend_on_propensity_batching() {
        // One worker pins the Welford merge order, so the only remaining
        // degree of freedom between the two runs is the lockstep batching
        // itself — which must be invisible, bit for bit.
        let sim = Simulator::new(bike_model(), 500).unwrap();
        let sim_options =
            SimulationOptions::new(4.0).tau_leap(crate::tauleap::TauLeapOptions::new(0.05));
        let run_with = |batch: bool| {
            run_ensemble(
                &sim,
                &[250],
                || ConstantPolicy::new(vec![1.5, 0.75]),
                &sim_options,
                &EnsembleOptions {
                    replications: 10,
                    base_seed: 21,
                    threads: 1,
                    grid_intervals: 12,
                    batch_propensities: batch,
                },
            )
            .unwrap()
        };
        assert_summaries_bit_identical(&run_with(true), &run_with(false));
    }
}
