//! Lockstep τ-leap replication batching: many trajectories, one rescan.
//!
//! A τ-leap run spends essentially all of its time in full propensity
//! rescans — `K` rate-program evaluations per leap and per fallback SSA
//! step. An ensemble runs many such trajectories with the *same* rate
//! programs, so the rescans of different replications are the same
//! instruction stream applied to different states: exactly the shape the
//! `mfu-lang` VM's batched SoA mode (`RateProgram::eval_batch_into`)
//! accelerates.
//!
//! [`simulate_tau_leap_lockstep`] advances a group of replications
//! ("lanes") as independent state machines that pause whenever they need
//! a propensity rescan. Each round, the driver gathers the paused lanes'
//! states and per-lane parameter vectors into one [`SoaBatch`], performs
//! a single batched evaluation per transition class, and hands each lane
//! its row of results to resume on. Everything *between* rescans — policy
//! queries, Poisson draws, τ selection, guards, recording — runs per lane
//! with that lane's own RNG stream, replicating the scalar engine in
//! [`crate::tauleap`] statement for statement.
//!
//! # Bit-identity contract
//!
//! Lane `i` of a lockstep group produces a [`SimulationRun`] (trajectory,
//! final counts, outcome, and every [`SimCounters`] field) bit-identical
//! to `simulator.simulate(...)` with the same seed, policy, and options.
//! This holds because (a) the batched VM guarantees each lane of
//! `eval_batch_into` equals the scalar `eval` bit-for-bit, and (b) no
//! other lane state feeds into a lane's arithmetic — lanes only *pause
//! together*. The only observable differences are scheduling-level: trace
//! events of different replications interleave, and wall-clock budgets
//! (if armed) see different real-time profiles, exactly as they do across
//! machines.
//!
//! [`crate::ensemble::run_ensemble`] uses this engine automatically for
//! τ-leap ensembles unless
//! [`EnsembleOptions::batch_propensities`](crate::ensemble::EnsembleOptions::batch_propensities)
//! is switched off.

use mfu_ctmc::transition::{accumulate_firings, apply_firings};
use mfu_guard::{BudgetTracker, Outcome, TruncationReason};
use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::ode::Trajectory;
use mfu_num::StateVec;
use rand::poisson;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mfu_obs::Field;

use crate::gillespie::{
    PropensityStrategy, Recorder, SimCounters, SimulationAlgorithm, SimulationOptions,
    SimulationRun, Simulator,
};
use crate::policy::ParameterPolicy;
use crate::selection::{linear_select, SelectionStrategy};
use crate::tauleap::{query_theta, reactant_orders, select_tau, TauLeapOptions};
use crate::{Result, SimError};

/// Shared per-group context threaded through the lane state machines.
struct Ctx<'a> {
    simulator: &'a Simulator,
    options: &'a SimulationOptions,
    leap: &'a TauLeapOptions,
    sparse_jumps: &'a [Vec<(usize, i64)>],
    orders: &'a [f64],
    scale: f64,
    max_events: usize,
    n_transitions: usize,
}

/// Which rescan a paused lane is waiting for; determines the pre-rescan
/// policy query and the post-rescan continuation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Top of the scalar engine's `'run` loop: rescan, then select τ.
    Outer,
    /// Inside an exact-SSA fallback burst: rescan, then one exact step.
    Burst,
}

/// One replication advancing in lockstep with its group.
struct Lane<P> {
    phase: Phase,
    rng: StdRng,
    policy: P,
    policy_constant: bool,
    theta: Vec<f64>,
    theta_known: bool,
    counts: Vec<i64>,
    x: StateVec,
    t: f64,
    steps: usize,
    tally: SimCounters,
    rates: Vec<f64>,
    mu: Vec<f64>,
    sigma2: Vec<f64>,
    firings: Vec<i64>,
    delta: Vec<i64>,
    trajectory: Trajectory,
    recorder: Recorder,
    tracker: BudgetTracker,
    outcome: Outcome,
    demoted: bool,
    tau: f64,
    threshold: f64,
    burst_step: usize,
    result: Option<Result<SimulationRun>>,
}

impl<P: ParameterPolicy> Lane<P> {
    fn new(ctx: &Ctx<'_>, initial_counts: &[i64], mut policy: P, seed: u64) -> Result<Self> {
        policy.reset();
        let dim = ctx.simulator.model().dim();
        let counts = initial_counts.to_vec();
        let x: StateVec = counts.iter().map(|&c| c as f64 / ctx.scale).collect();
        let mut trajectory = Trajectory::new(dim);
        trajectory.push(0.0, x.clone())?;
        let policy_constant = policy.is_constant()
            && !ctx
                .simulator
                .fault_plan()
                .is_some_and(mfu_guard::FaultPlan::has_policy_faults);
        Ok(Lane {
            phase: Phase::Outer,
            rng: StdRng::seed_from_u64(seed),
            policy,
            policy_constant,
            theta: Vec::new(),
            theta_known: false,
            counts,
            x,
            t: 0.0,
            steps: 0,
            tally: SimCounters::default(),
            rates: vec![0.0; ctx.n_transitions],
            mu: vec![0.0; dim],
            sigma2: vec![0.0; dim],
            firings: vec![0; ctx.n_transitions],
            delta: vec![0; dim],
            trajectory,
            recorder: Recorder::new(ctx.options),
            tracker: BudgetTracker::start(&ctx.options.budget),
            outcome: Outcome::Completed,
            demoted: false,
            tau: 0.0,
            threshold: 0.0,
            burst_step: 0,
            result: None,
        })
    }

    fn finished(&self) -> bool {
        self.result.is_some()
    }

    /// Pre-rescan policy handling — the statements the scalar engine runs
    /// immediately before each full rescan.
    fn prepare(&mut self, ctx: &Ctx<'_>) -> Result<()> {
        let requery = match self.phase {
            Phase::Outer => !(self.theta_known && self.policy_constant),
            // The leap start already queried for burst step 0.
            Phase::Burst => self.burst_step > 0 && !self.policy_constant,
        };
        if requery {
            self.theta = query_theta(
                ctx.simulator,
                &mut self.policy,
                ctx.options,
                self.t,
                &self.x,
                self.steps as u64,
                &mut self.rng,
            )?;
            self.theta_known = true;
        }
        Ok(())
    }

    /// Validates and scales this lane's row of raw batched densities,
    /// replicating `Simulator::eval_rate` in transition order (including
    /// its stop-at-first-unhealthy-rate semantics, so an armed fault plan
    /// sees exactly the scalar perturbation sequence).
    fn validate_rates(
        &mut self,
        ctx: &Ctx<'_>,
        raw: &[f64],
        lane: usize,
        width: usize,
    ) -> Result<f64> {
        let mut total = 0.0_f64;
        for k in 0..ctx.n_transitions {
            let class = &ctx.simulator.model().transitions()[k];
            let mut density = raw[k * width + lane];
            if let Some(plan) = ctx.simulator.fault_plan() {
                density = plan.perturb_rate(k, self.steps as u64, density);
            }
            if !mfu_guard::rate_is_healthy(density) {
                return Err(SimError::InvalidRate {
                    rule: class.name().to_string(),
                    time: self.t,
                    value: density,
                });
            }
            let rate = density * ctx.scale;
            self.rates[k] = rate;
            total += rate;
        }
        Ok(total)
    }

    /// Resumes the lane on a fresh rescan: `'run`-top continuation for
    /// [`Phase::Outer`], one exact fallback step for [`Phase::Burst`].
    fn on_rates(&mut self, ctx: &Ctx<'_>, raw: &[f64], lane: usize, width: usize) -> Result<()> {
        let total = self.validate_rates(ctx, raw, lane, width)?;
        self.tally.propensity_evals += ctx.n_transitions as u64;
        match self.phase {
            Phase::Outer => self.on_outer_rates(ctx, total),
            Phase::Burst => self.on_burst_rates(ctx, total),
        }
    }

    fn on_outer_rates(&mut self, ctx: &Ctx<'_>, total: f64) -> Result<()> {
        if total <= 0.0 {
            return self.finish(ctx);
        }
        self.tau = select_tau(
            ctx.leap.epsilon,
            &self.counts,
            &self.rates,
            ctx.sparse_jumps,
            ctx.orders,
            &mut self.mu,
            &mut self.sigma2,
        )
        .min(ctx.options.t_end - self.t);
        self.threshold = ctx.leap.ssa_threshold / total;
        self.inner_loop(ctx)
    }

    /// The scalar engine's guarded inner loop, minus the rescans: runs
    /// leap attempts (with halve/demote guards) until the lane finishes or
    /// pauses for its next rescan.
    fn inner_loop(&mut self, ctx: &Ctx<'_>) -> Result<()> {
        let tracer = ctx.simulator.obs().tracer.clone();
        loop {
            if self.tracker.expired() {
                self.outcome = Outcome::Truncated {
                    reason: TruncationReason::WallClock,
                    reached_t: self.t,
                };
                return self.finish(ctx);
            }
            if self.demoted || self.tau < self.threshold.min(ctx.options.t_end - self.t) {
                self.tally.tau_fallback_bursts += 1;
                if tracer.is_enabled() {
                    tracer.event(
                        "tau_fallback_burst",
                        &[
                            ("t", Field::F64(self.t)),
                            ("tau", Field::F64(self.tau)),
                            ("threshold", Field::F64(self.threshold)),
                            ("burst", Field::U64(ctx.leap.ssa_burst as u64)),
                        ],
                    );
                }
                self.burst_step = 0;
                self.phase = Phase::Burst;
                return Ok(());
            }

            // ---- attempt one leap of length τ ---------------------------
            for (k, firing) in self.firings.iter_mut().enumerate() {
                *firing = if self.rates[k] > 0.0 {
                    self.tally.poisson_draws += 1;
                    poisson::sample(&mut self.rng, self.rates[k] * self.tau) as i64
                } else {
                    0
                };
            }
            self.delta.fill(0);
            for (jump, &firing) in ctx.sparse_jumps.iter().zip(self.firings.iter()) {
                if firing > 0 {
                    accumulate_firings(&mut self.delta, jump, firing);
                }
            }
            if self
                .counts
                .iter()
                .zip(self.delta.iter())
                .any(|(&c, &d)| c + d < 0)
            {
                self.tally.tau_halvings += 1;
                if tracer.is_enabled() {
                    tracer.event(
                        "tau_halved",
                        &[
                            ("t", Field::F64(self.t)),
                            ("tau", Field::F64(self.tau / 2.0)),
                        ],
                    );
                }
                if let Some(cap) = ctx.options.budget.max_tau_halvings {
                    if self.tally.tau_halvings >= cap {
                        self.outcome = Outcome::Truncated {
                            reason: TruncationReason::MaxTauHalvings,
                            reached_t: self.t,
                        };
                        return self.finish(ctx);
                    }
                }
                if self.tally.tau_halvings >= ctx.leap.demote_after_halvings {
                    self.demoted = true;
                    self.tally.tau_demotions = 1;
                    if tracer.is_enabled() {
                        tracer.event(
                            "tau_demoted",
                            &[
                                ("t", Field::F64(self.t)),
                                ("halvings", Field::U64(self.tally.tau_halvings)),
                            ],
                        );
                    }
                    continue;
                }
                self.tau /= 2.0;
                continue;
            }
            for (i, &d) in self.delta.iter().enumerate() {
                if d != 0 {
                    self.counts[i] += d;
                    self.x[i] = self.counts[i] as f64 / ctx.scale;
                }
            }
            self.t += self.tau;
            self.steps += 1;
            self.tally.tau_leap_steps += 1;
            if self.recorder.should_record(self.steps, self.t)
                && self.t > self.trajectory.last_time()
            {
                self.trajectory.push(self.t, self.x.clone())?;
            }
            if self.steps >= ctx.max_events {
                self.outcome = Outcome::Truncated {
                    reason: TruncationReason::MaxEvents,
                    reached_t: self.t,
                };
                return self.finish(ctx);
            }
            if let Some(cap) = ctx.options.budget.max_leap_steps {
                if self.tally.tau_leap_steps >= cap {
                    self.outcome = Outcome::Truncated {
                        reason: TruncationReason::MaxLeapSteps,
                        reached_t: self.t,
                    };
                    return self.finish(ctx);
                }
            }
            if self.t >= ctx.options.t_end {
                return self.finish(ctx);
            }
            // leap accepted: back to τ selection via a fresh rescan
            self.phase = Phase::Outer;
            return Ok(());
        }
    }

    /// One exact SSA step of a fallback burst, resumed on the burst's
    /// rescan result.
    fn on_burst_rates(&mut self, ctx: &Ctx<'_>, burst_total: f64) -> Result<()> {
        if burst_total <= 0.0 {
            return self.finish(ctx);
        }
        let u: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let dt = -u.ln() / burst_total;
        if self.t + dt >= ctx.options.t_end {
            return self.finish(ctx);
        }
        self.t += dt;
        let Some(chosen) = linear_select(&self.rates, self.rng.gen::<f64>() * burst_total) else {
            return self.finish(ctx);
        };
        if apply_firings(&mut self.counts, &ctx.sparse_jumps[chosen], 1) {
            for &(i, _) in &ctx.sparse_jumps[chosen] {
                self.x[i] = self.counts[i] as f64 / ctx.scale;
            }
        }
        self.steps += 1;
        self.tally.tau_fallback_steps += 1;
        if self.recorder.should_record(self.steps, self.t) && self.t > self.trajectory.last_time() {
            self.trajectory.push(self.t, self.x.clone())?;
        }
        if self.steps >= ctx.max_events {
            self.outcome = Outcome::Truncated {
                reason: TruncationReason::MaxEvents,
                reached_t: self.t,
            };
            return self.finish(ctx);
        }
        if self.tracker.expired() {
            self.outcome = Outcome::Truncated {
                reason: TruncationReason::WallClock,
                reached_t: self.t,
            };
            return self.finish(ctx);
        }
        self.burst_step += 1;
        if self.burst_step >= ctx.leap.ssa_burst {
            // burst done: reselect τ from the new state
            self.phase = Phase::Outer;
        }
        Ok(())
    }

    /// The scalar engine's post-`'run` epilogue: pin the horizon (or the
    /// truncation point), flush counters, emit the run summary.
    fn finish(&mut self, ctx: &Ctx<'_>) -> Result<()> {
        let pin_time = match self.outcome {
            Outcome::Completed => ctx.options.t_end,
            Outcome::Truncated { reached_t, .. } => reached_t,
        };
        if pin_time > self.trajectory.last_time() {
            self.trajectory.push(pin_time, self.x.clone())?;
        }
        self.tally.budget_checks = self.tracker.checks();
        self.tally.events_fired = self.steps as u64;
        self.tally.flush_to(&ctx.simulator.obs().metrics);
        let tracer = &ctx.simulator.obs().tracer;
        if tracer.is_enabled() {
            tracer.event(
                "sim_run",
                &[
                    ("algorithm", Field::Str("tau-leap")),
                    ("epsilon", Field::F64(ctx.leap.epsilon)),
                    ("t_end", Field::F64(ctx.options.t_end)),
                    ("events", Field::U64(self.tally.events_fired)),
                    ("tau_leap_steps", Field::U64(self.tally.tau_leap_steps)),
                    ("tau_halvings", Field::U64(self.tally.tau_halvings)),
                    (
                        "tau_fallback_bursts",
                        Field::U64(self.tally.tau_fallback_bursts),
                    ),
                    (
                        "tau_fallback_steps",
                        Field::U64(self.tally.tau_fallback_steps),
                    ),
                    ("poisson_draws", Field::U64(self.tally.poisson_draws)),
                    ("tau_demotions", Field::U64(self.tally.tau_demotions)),
                    ("outcome", Field::Str(&self.outcome.to_string())),
                ],
            );
        }
        let dim = self.x.dim();
        let trajectory = std::mem::replace(&mut self.trajectory, Trajectory::new(dim));
        self.result = Some(Ok(SimulationRun::from_parts(
            trajectory,
            self.steps,
            std::mem::take(&mut self.counts),
            self.tally,
            SelectionStrategy::LinearScan,
            PropensityStrategy::FullRescan,
            self.outcome,
        )));
        Ok(())
    }
}

/// Runs one τ-leap replication per `(policy, seed)` pair, batching the
/// propensity rescans of all still-running replications into shared
/// [`SoaBatch`] evaluations.
///
/// `options.algorithm` must select
/// [`SimulationAlgorithm::TauLeap`]; each returned entry is exactly what
/// [`Simulator::simulate`] returns for the same replication (see the
/// module docs for the bit-identity contract). A failed replication does
/// not stop the others — errors are returned per lane.
///
/// # Errors
///
/// Returns a top-level error when the inputs themselves are invalid: a
/// non-τ-leap algorithm, `policies`/`seeds` length mismatch, or initial
/// counts that are negative or of the wrong dimension.
pub fn simulate_tau_leap_lockstep<P: ParameterPolicy>(
    simulator: &Simulator,
    initial_counts: &[i64],
    policies: Vec<P>,
    options: &SimulationOptions,
    seeds: &[u64],
) -> Result<Vec<Result<SimulationRun>>> {
    let SimulationAlgorithm::TauLeap(leap) = options.algorithm else {
        return Err(SimError::invalid_input(
            "lockstep batching requires the tau-leap algorithm",
        ));
    };
    if policies.len() != seeds.len() {
        return Err(SimError::invalid_input(
            "one policy per seed is required for a lockstep group",
        ));
    }
    if initial_counts.len() != simulator.model().dim() {
        return Err(SimError::invalid_input(format!(
            "expected {} initial counts, got {}",
            simulator.model().dim(),
            initial_counts.len()
        )));
    }
    if initial_counts.iter().any(|&c| c < 0) {
        return Err(SimError::invalid_input(
            "initial counts must be non-negative",
        ));
    }

    let model = simulator.model();
    let orders = reactant_orders(simulator);
    let ctx = Ctx {
        simulator,
        options,
        leap: &leap,
        sparse_jumps: simulator.sparse_jumps(),
        orders: &orders,
        scale: simulator.scale() as f64,
        max_events: options.effective_max_events(),
        n_transitions: model.transitions().len(),
    };

    let mut lanes: Vec<Lane<P>> = Vec::with_capacity(seeds.len());
    for (policy, &seed) in policies.into_iter().zip(seeds) {
        lanes.push(Lane::new(&ctx, initial_counts, policy, seed)?);
    }

    let dim = model.dim();
    let n_params = model.params().dim();
    let mut x_batch = SoaBatch::zeros(dim.max(1), 1);
    let mut theta_batch = SoaBatch::zeros(n_params.max(1), 1);
    let mut raw = Vec::new();
    let mut active: Vec<usize> = Vec::with_capacity(lanes.len());

    loop {
        // 1. Pre-rescan work: policy queries per paused lane. A query
        // error fails that lane alone, exactly like the scalar `?`.
        active.clear();
        for (li, lane) in lanes.iter_mut().enumerate() {
            if lane.finished() {
                continue;
            }
            match lane.prepare(&ctx) {
                Ok(()) => active.push(li),
                Err(err) => lane.result = Some(Err(err)),
            }
        }
        if active.is_empty() {
            break;
        }

        // 2. One batched rescan for every paused lane: lane `l` of the
        // batch is replication `active[l]` at its current state and
        // parameter vector.
        let width = active.len();
        x_batch.reset(dim, width);
        theta_batch.reset(n_params, width);
        for (l, &li) in active.iter().enumerate() {
            x_batch.set_lane(l, lanes[li].x.as_slice());
            theta_batch.set_lane(l, &lanes[li].theta);
        }
        raw.clear();
        raw.resize(ctx.n_transitions * width, 0.0);
        for (k, class) in model.transitions().iter().enumerate() {
            class.rate_fn().eval_batch_into(
                &x_batch,
                BatchTheta::PerLane(&theta_batch),
                &mut raw[k * width..(k + 1) * width],
            );
        }

        // 3. Resume each lane on its row of results.
        for (l, &li) in active.iter().enumerate() {
            let lane = &mut lanes[li];
            if let Err(err) = lane.on_rates(&ctx, &raw, l, width) {
                lane.result = Some(Err(err));
            }
        }
    }

    Ok(lanes
        .into_iter()
        .map(|lane| {
            lane.result
                .unwrap_or_else(|| Err(SimError::invalid_input("lane never finished")))
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gillespie::{SimulationOptions, Simulator};
    use crate::policy::{ConstantPolicy, HysteresisPolicy, RandomJumpPolicy};
    use mfu_ctmc::params::{Interval, ParamSpace};
    use mfu_ctmc::population::PopulationModel;
    use mfu_ctmc::transition::TransitionClass;

    fn sir_model() -> PopulationModel {
        let params = ParamSpace::new(vec![("contact", Interval::new(1.0, 10.0).unwrap())]).unwrap();
        PopulationModel::builder(3, params)
            .variable_names(vec!["S", "I", "R"])
            .transition(
                TransitionClass::new("infect", [-1.0, 1.0, 0.0], |x: &StateVec, th: &[f64]| {
                    (0.1 + th[0] * x[1]) * x[0]
                })
                .with_species_support(vec![0, 1]),
            )
            .transition(
                TransitionClass::new("recover", [0.0, -1.0, 1.0], |x: &StateVec, _: &[f64]| {
                    5.0 * x[1]
                })
                .with_species_support(vec![1]),
            )
            .build()
            .unwrap()
    }

    fn death_model() -> PopulationModel {
        let params = ParamSpace::single("rate", 1.0, 1.0).unwrap();
        PopulationModel::builder(1, params)
            .transition(
                TransitionClass::new("die", [-1.0], |x: &StateVec, th: &[f64]| th[0] * x[0])
                    .with_species_support(vec![0]),
            )
            .build()
            .unwrap()
    }

    fn assert_runs_bit_identical(a: &SimulationRun, b: &SimulationRun) {
        assert_eq!(a.events(), b.events());
        assert_eq!(a.final_counts(), b.final_counts());
        assert_eq!(a.counters(), b.counters());
        assert_eq!(a.outcome(), b.outcome());
        assert_eq!(a.trajectory().len(), b.trajectory().len());
        for ((ta, sa), (tb, sb)) in a.trajectory().iter().zip(b.trajectory().iter()) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(sa.as_slice().len(), sb.as_slice().len());
            for (va, vb) in sa.as_slice().iter().zip(sb.as_slice()) {
                assert_eq!(va.to_bits(), vb.to_bits());
            }
        }
    }

    #[test]
    fn lockstep_lanes_are_bit_identical_to_scalar_runs() {
        let simulator = Simulator::new(sir_model(), 20_000).unwrap();
        let options = SimulationOptions::new(2.0).tau_leap(TauLeapOptions::new(0.05));
        let seeds: Vec<u64> = (0..6).collect();
        let policies: Vec<_> = seeds
            .iter()
            .map(|_| ConstantPolicy::new(vec![5.0]))
            .collect();
        let batched =
            simulate_tau_leap_lockstep(&simulator, &[14_000, 6_000, 0], policies, &options, &seeds)
                .unwrap();
        for (lane, &seed) in batched.iter().zip(&seeds) {
            let mut policy = ConstantPolicy::new(vec![5.0]);
            let scalar = simulator
                .simulate(&[14_000, 6_000, 0], &mut policy, &options, seed)
                .unwrap();
            assert_runs_bit_identical(lane.as_ref().unwrap(), &scalar);
        }
    }

    #[test]
    fn lockstep_matches_scalar_through_fallback_bursts_and_truncation() {
        // Boundary-parked pure death engages the exact fallback burst on
        // every lane; a tight event cap exercises the truncated epilogue.
        let simulator = Simulator::new(death_model(), 50).unwrap();
        let options = SimulationOptions::new(1_000.0)
            .tau_leap(TauLeapOptions::new(0.5).ssa_threshold(5.0).ssa_burst(10));
        let seeds: Vec<u64> = (0..4).collect();
        let policies: Vec<_> = seeds
            .iter()
            .map(|_| ConstantPolicy::new(vec![1.0]))
            .collect();
        let batched =
            simulate_tau_leap_lockstep(&simulator, &[50], policies, &options, &seeds).unwrap();
        for (lane, &seed) in batched.iter().zip(&seeds) {
            let run = lane.as_ref().unwrap();
            assert!(run.counters().tau_fallback_bursts > 0);
            let mut policy = ConstantPolicy::new(vec![1.0]);
            let scalar = simulator
                .simulate(&[50], &mut policy, &options, seed)
                .unwrap();
            assert_runs_bit_identical(run, &scalar);
        }

        let capped = options.max_events(3);
        let policies: Vec<_> = seeds
            .iter()
            .map(|_| ConstantPolicy::new(vec![1.0]))
            .collect();
        let batched =
            simulate_tau_leap_lockstep(&simulator, &[50], policies, &capped, &seeds).unwrap();
        for (lane, &seed) in batched.iter().zip(&seeds) {
            let run = lane.as_ref().unwrap();
            assert!(run.is_truncated());
            let mut policy = ConstantPolicy::new(vec![1.0]);
            let scalar = simulator
                .simulate(&[50], &mut policy, &capped, seed)
                .unwrap();
            assert_runs_bit_identical(run, &scalar);
        }
    }

    #[test]
    fn lockstep_matches_scalar_under_stateful_and_random_policies() {
        // Non-constant policies re-query per burst step with the lane's own
        // RNG stream; both a state-feedback and an RNG-consuming policy
        // must replay the scalar draw order exactly.
        let simulator = Simulator::new(sir_model(), 5_000).unwrap();
        let options = SimulationOptions::new(1.5).tau_leap(TauLeapOptions::new(0.05));
        let seeds: Vec<u64> = (10..14).collect();

        let make_hysteresis = || HysteresisPolicy::new(vec![5.0], 0, 2.0, 8.0, 1, 0.2, 0.4, false);
        let policies: Vec<_> = seeds.iter().map(|_| make_hysteresis()).collect();
        let batched =
            simulate_tau_leap_lockstep(&simulator, &[3_500, 1_500, 0], policies, &options, &seeds)
                .unwrap();
        for (lane, &seed) in batched.iter().zip(&seeds) {
            let mut policy = make_hysteresis();
            let scalar = simulator
                .simulate(&[3_500, 1_500, 0], &mut policy, &options, seed)
                .unwrap();
            assert_runs_bit_identical(lane.as_ref().unwrap(), &scalar);
        }

        let make_jump = || {
            let space =
                ParamSpace::new(vec![("contact", Interval::new(1.0, 10.0).unwrap())]).unwrap();
            RandomJumpPolicy::new(space, vec![5.0], 0, 1, 0.5, 5.0)
        };
        let policies: Vec<_> = seeds.iter().map(|_| make_jump()).collect();
        let batched =
            simulate_tau_leap_lockstep(&simulator, &[3_500, 1_500, 0], policies, &options, &seeds)
                .unwrap();
        for (lane, &seed) in batched.iter().zip(&seeds) {
            let mut policy = make_jump();
            let scalar = simulator
                .simulate(&[3_500, 1_500, 0], &mut policy, &options, seed)
                .unwrap();
            assert_runs_bit_identical(lane.as_ref().unwrap(), &scalar);
        }
    }

    #[test]
    fn lockstep_validates_inputs() {
        let simulator = Simulator::new(death_model(), 10).unwrap();
        // wrong algorithm
        let exact = SimulationOptions::new(1.0);
        assert!(matches!(
            simulate_tau_leap_lockstep(
                &simulator,
                &[5],
                vec![ConstantPolicy::new(vec![1.0])],
                &exact,
                &[1],
            ),
            Err(SimError::InvalidInput { .. })
        ));
        let leap = SimulationOptions::new(1.0).tau_leap(TauLeapOptions::new(0.1));
        // policy/seed mismatch
        assert!(matches!(
            simulate_tau_leap_lockstep(
                &simulator,
                &[5],
                vec![ConstantPolicy::new(vec![1.0])],
                &leap,
                &[1, 2],
            ),
            Err(SimError::InvalidInput { .. })
        ));
        // bad counts
        assert!(simulate_tau_leap_lockstep(
            &simulator,
            &[-1],
            vec![ConstantPolicy::new(vec![1.0])],
            &leap,
            &[1],
        )
        .is_err());
        // a strict-policy violation fails the lane, not the group
        let strict = SimulationOptions::new(1.0).tau_leap(TauLeapOptions::new(0.1));
        let results = simulate_tau_leap_lockstep(
            &simulator,
            &[5],
            vec![
                ConstantPolicy::new(vec![99.0]),
                ConstantPolicy::new(vec![1.0]),
            ],
            &strict,
            &[1, 2],
        )
        .unwrap();
        assert!(matches!(results[0], Err(SimError::PolicyOutOfRange { .. })));
        assert!(results[1].is_ok());
    }
}
