//! Running statistics and empirical summaries of simulation output.

use serde::{Deserialize, Serialize};

use mfu_num::StateVec;

use crate::{Result, SimError};

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use mfu_sim::stats::RunningStats;
///
/// let mut stats = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     stats.push(x);
/// }
/// assert_eq!(stats.count(), 4);
/// assert!((stats.mean() - 2.5).abs() < 1e-12);
/// assert!((stats.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (zero when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of an approximate 95 % confidence interval for the mean
    /// (normal approximation, `1.96·σ/√n`; zero when fewer than two samples).
    pub fn confidence_95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64) * (other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Per-coordinate statistics of a collection of state vectors.
///
/// # Errors
///
/// Returns an error if the collection is empty or the vectors have
/// inconsistent dimensions.
pub fn per_coordinate_stats(states: &[StateVec]) -> Result<Vec<RunningStats>> {
    let first = states
        .first()
        .ok_or_else(|| SimError::invalid_input("no states to summarise"))?;
    let dim = first.dim();
    let mut stats = vec![RunningStats::new(); dim];
    for state in states {
        if state.dim() != dim {
            return Err(SimError::invalid_input(
                "states have inconsistent dimensions",
            ));
        }
        for (i, &v) in state.as_slice().iter().enumerate() {
            stats[i].push(v);
        }
    }
    Ok(stats)
}

/// Empirical quantile of a sample (linear interpolation between order statistics).
///
/// # Errors
///
/// Returns an error if the sample is empty or `q` is outside `[0, 1]`.
pub fn quantile(sample: &[f64], q: f64) -> Result<f64> {
    if sample.is_empty() {
        return Err(SimError::invalid_input(
            "cannot take a quantile of an empty sample",
        ));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(SimError::invalid_input("quantile level must lie in [0, 1]"));
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if sorted.len() == 1 {
        return Ok(sorted[0]);
    }
    let position = q * (sorted.len() - 1) as f64;
    let lower = position.floor() as usize;
    let upper = position.ceil() as usize;
    let weight = position - lower as f64;
    Ok(sorted[lower] * (1.0 - weight) + sorted[upper] * weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_formulas() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut stats = RunningStats::new();
        for &x in &data {
            stats.push(x);
        }
        assert_eq!(stats.count(), 8);
        assert!((stats.mean() - 5.0).abs() < 1e-12);
        let exact_var = data.iter().map(|x| (x - 5.0f64).powi(2)).sum::<f64>() / 7.0;
        assert!((stats.variance() - exact_var).abs() < 1e-12);
        assert_eq!(stats.min(), 2.0);
        assert_eq!(stats.max(), 9.0);
        assert!(stats.confidence_95() > 0.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = RunningStats::new();
        assert_eq!(stats.count(), 0);
        assert_eq!(stats.mean(), 0.0);
        assert_eq!(stats.variance(), 0.0);
        assert_eq!(stats.confidence_95(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut all = RunningStats::new();
        data.iter().for_each(|&x| all.push(x));

        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        data[..40].iter().for_each(|&x| left.push(x));
        data[40..].iter().for_each(|&x| right.push(x));
        left.merge(&right);

        assert_eq!(left.count(), all.count());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(left.min(), all.min());
        assert_eq!(left.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn per_coordinate_statistics() {
        let states = vec![
            StateVec::from([0.0, 1.0]),
            StateVec::from([1.0, 3.0]),
            StateVec::from([2.0, 5.0]),
        ];
        let stats = per_coordinate_stats(&states).unwrap();
        assert!((stats[0].mean() - 1.0).abs() < 1e-12);
        assert!((stats[1].mean() - 3.0).abs() < 1e-12);
        assert!(per_coordinate_stats(&[]).is_err());
        let mixed = vec![StateVec::from([0.0]), StateVec::from([0.0, 1.0])];
        assert!(per_coordinate_stats(&mixed).is_err());
    }

    #[test]
    fn quantiles() {
        let sample = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&sample, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&sample, 1.0).unwrap(), 5.0);
        assert_eq!(quantile(&sample, 0.5).unwrap(), 3.0);
        assert!((quantile(&sample, 0.25).unwrap() - 2.0).abs() < 1e-12);
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&sample, 1.5).is_err());
        assert_eq!(quantile(&[7.0], 0.3).unwrap(), 7.0);
    }
}
