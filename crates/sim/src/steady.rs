//! Sampling the stationary regime of a simulated population process.
//!
//! Theorem 3 of the paper states that, as `N` grows, the stationary measure
//! of the stochastic system concentrates on the Birkhoff centre of the
//! mean-field differential inclusion. Figure 6 illustrates this by plotting
//! long-run sample paths against the Birkhoff centre for `N = 100`, `1000`
//! and `10000`. This module produces exactly those long-run samples: a single
//! long trajectory with a burn-in period discarded and the remainder thinned
//! onto a uniform grid.

use mfu_guard::{Outcome, RunBudget};
use mfu_num::geometry::Point2;
use mfu_num::StateVec;

use crate::gillespie::{SimulationAlgorithm, SimulationOptions, Simulator};
use crate::policy::ParameterPolicy;
use crate::{Result, SimError};

/// Options for stationary-regime sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyStateOptions {
    /// Time discarded at the beginning of the run.
    pub burn_in: f64,
    /// Spacing between retained samples.
    pub sample_interval: f64,
    /// Number of retained samples.
    pub samples: usize,
    /// Event budget forwarded to the simulator.
    pub max_events: usize,
    /// Simulation algorithm forwarded to the simulator (τ-leaping makes
    /// long stationary runs at large `N` affordable; defaults to the
    /// exact SSA).
    pub algorithm: SimulationAlgorithm,
    /// Resource budget forwarded to the simulator. Stationary sampling needs
    /// the full horizon, so a truncated run is reported as a typed error
    /// rather than a partial sample.
    pub budget: RunBudget,
}

impl SteadyStateOptions {
    /// Creates options with the given burn-in, sample spacing and sample count.
    ///
    /// # Panics
    ///
    /// Panics if `burn_in` is negative, `sample_interval` is not positive, or
    /// `samples == 0` — see [`SteadyStateOptions::try_new`] for the typed
    /// non-panicking variant.
    pub fn new(burn_in: f64, sample_interval: f64, samples: usize) -> Self {
        assert!(
            burn_in >= 0.0 && burn_in.is_finite(),
            "burn-in must be non-negative"
        );
        assert!(
            sample_interval > 0.0 && sample_interval.is_finite(),
            "sample interval must be positive"
        );
        assert!(samples > 0, "at least one sample is required");
        SteadyStateOptions {
            burn_in,
            sample_interval,
            samples,
            max_events: 200_000_000,
            algorithm: SimulationAlgorithm::Exact,
            budget: RunBudget::unlimited(),
        }
    }

    /// Creates options, reporting invalid values as typed errors instead of
    /// panicking (the contract server-facing callers need).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidInput`] if `burn_in` is negative or
    /// non-finite, `sample_interval` is not positive and finite, or
    /// `samples == 0`.
    pub fn try_new(burn_in: f64, sample_interval: f64, samples: usize) -> Result<Self> {
        if !(burn_in >= 0.0 && burn_in.is_finite()) {
            return Err(SimError::invalid_input(
                "steady-state burn-in must be non-negative and finite",
            ));
        }
        if !(sample_interval > 0.0 && sample_interval.is_finite()) {
            return Err(SimError::invalid_input(
                "steady-state sample interval must be positive and finite",
            ));
        }
        if samples == 0 {
            return Err(SimError::invalid_input(
                "steady-state sampling requires at least one sample",
            ));
        }
        Ok(SteadyStateOptions::new(burn_in, sample_interval, samples))
    }

    /// Selects the simulation algorithm for the underlying long run.
    #[must_use]
    pub fn algorithm(mut self, algorithm: SimulationAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the resource budget forwarded to the simulator.
    #[must_use]
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Total simulated time implied by these options.
    pub fn horizon(&self) -> f64 {
        self.burn_in + self.sample_interval * self.samples as f64
    }
}

/// Samples of the stationary regime of one long run.
#[derive(Debug, Clone)]
pub struct SteadyStateSample {
    states: Vec<StateVec>,
    events: usize,
}

impl SteadyStateSample {
    /// The retained (post burn-in) state samples.
    pub fn states(&self) -> &[StateVec] {
        &self.states
    }

    /// Number of samples retained.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns `true` when no sample was retained.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Number of CTMC events in the underlying run.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Projects every sample onto the plane spanned by two coordinates,
    /// ready for containment tests against a 2-D Birkhoff centre.
    ///
    /// # Errors
    ///
    /// Returns an error if either coordinate index is out of range.
    pub fn project(&self, coord_x: usize, coord_y: usize) -> Result<Vec<Point2>> {
        if let Some(first) = self.states.first() {
            if coord_x >= first.dim() || coord_y >= first.dim() {
                return Err(SimError::invalid_input(
                    "projection coordinate out of range",
                ));
            }
        }
        Ok(self
            .states
            .iter()
            .map(|s| Point2::new(s[coord_x], s[coord_y]))
            .collect())
    }
}

/// Runs one long simulation and retains thinned post-burn-in samples.
///
/// # Errors
///
/// Propagates simulation errors; also fails if the run terminates (absorbs)
/// before the burn-in period ends.
pub fn sample_steady_state(
    simulator: &Simulator,
    initial_counts: &[i64],
    policy: &mut dyn ParameterPolicy,
    options: &SteadyStateOptions,
    seed: u64,
) -> Result<SteadyStateSample> {
    let horizon = options.horizon();
    let sim_options = SimulationOptions::new(horizon)
        .max_events(options.max_events)
        .algorithm(options.algorithm)
        .budget(options.budget)
        .record_interval(
            options
                .sample_interval
                .min(options.burn_in.max(options.sample_interval))
                / 2.0,
        );
    let run = simulator.simulate(initial_counts, policy, &sim_options, seed)?;
    // Stationary statistics over a truncated run would silently repeat the
    // last reached state across the missing tail — surface the truncation
    // as a typed error instead (the same mapping the ensemble applies).
    if let Outcome::Truncated { reason, reached_t } = run.outcome() {
        return Err(match reason {
            mfu_guard::TruncationReason::MaxEvents => SimError::EventBudgetExhausted {
                events: run.events(),
                reached: reached_t,
            },
            _ => SimError::Truncated {
                reason,
                events: run.events(),
                reached: reached_t,
            },
        });
    }
    let trajectory = run.trajectory();
    if trajectory.last_time() < options.burn_in {
        return Err(SimError::invalid_input(
            "simulation ended before the burn-in period (absorbing state reached?)",
        ));
    }
    let mut states = Vec::with_capacity(options.samples);
    for k in 1..=options.samples {
        let t = options.burn_in + options.sample_interval * k as f64;
        states.push(trajectory.at(t.min(trajectory.last_time()))?);
    }
    Ok(SteadyStateSample {
        states,
        events: run.events(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ConstantPolicy;
    use mfu_ctmc::params::{Interval, ParamSpace};
    use mfu_ctmc::population::PopulationModel;
    use mfu_ctmc::transition::TransitionClass;

    fn bike_model() -> PopulationModel {
        let params = ParamSpace::new(vec![
            ("arrival", Interval::new(0.5, 2.0).unwrap()),
            ("return", Interval::new(0.5, 2.0).unwrap()),
        ])
        .unwrap();
        PopulationModel::builder(1, params)
            .variable_names(vec!["bikes"])
            .transition(TransitionClass::new(
                "pickup",
                [-1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] > 0.0 {
                        th[0]
                    } else {
                        0.0
                    }
                },
            ))
            .transition(TransitionClass::new(
                "return",
                [1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] < 1.0 {
                        th[1]
                    } else {
                        0.0
                    }
                },
            ))
            .build()
            .unwrap()
    }

    /// A mean-reverting occupancy model: pickups proportional to occupancy,
    /// returns proportional to free racks. The stationary distribution is
    /// tightly concentrated around the mean-field fixed point 1/2.
    fn mean_reverting_model() -> PopulationModel {
        let params = ParamSpace::new(vec![
            ("arrival", Interval::new(0.5, 2.0).unwrap()),
            ("return", Interval::new(0.5, 2.0).unwrap()),
        ])
        .unwrap();
        PopulationModel::builder(1, params)
            .variable_names(vec!["occupancy"])
            .transition(TransitionClass::new(
                "pickup",
                [-1.0],
                |x: &StateVec, th: &[f64]| th[0] * x[0],
            ))
            .transition(TransitionClass::new(
                "return",
                [1.0],
                |x: &StateVec, th: &[f64]| th[1] * (1.0 - x[0]).max(0.0),
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn steady_samples_concentrate_near_mean_field_fixed_point() {
        let sim = Simulator::new(mean_reverting_model(), 200).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let options = SteadyStateOptions::new(20.0, 0.5, 60);
        let sample = sample_steady_state(&sim, &[20], &mut policy, &options, 13).unwrap();
        assert_eq!(sample.len(), 60);
        assert!(sample.events() > 0);
        let mean: f64 = sample.states().iter().map(|s| s[0]).sum::<f64>() / sample.len() as f64;
        // strong mean reversion: occupancy fluctuates tightly around 1/2
        assert!(
            (mean - 0.5).abs() < 0.1,
            "stationary mean {mean} far from 0.5"
        );
    }

    #[test]
    fn projection_produces_plane_points() {
        let sim = Simulator::new(bike_model(), 50).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let options = SteadyStateOptions::new(1.0, 0.5, 10);
        let sample = sample_steady_state(&sim, &[25], &mut policy, &options, 2).unwrap();
        let points = sample.project(0, 0).unwrap();
        assert_eq!(points.len(), 10);
        assert!(points.iter().all(|p| p.x >= 0.0 && p.x <= 1.0));
        assert!(sample.project(0, 5).is_err());
    }

    #[test]
    fn options_accessors() {
        let options = SteadyStateOptions::new(10.0, 0.5, 20);
        assert!((options.horizon() - 20.0).abs() < 1e-12);
        assert_eq!(options.algorithm, SimulationAlgorithm::Exact);
    }

    #[test]
    fn tau_leap_steady_samples_concentrate_like_the_exact_ones() {
        use crate::tauleap::TauLeapOptions;
        let sim = Simulator::new(mean_reverting_model(), 2000).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let options = SteadyStateOptions::new(20.0, 0.5, 60)
            .algorithm(SimulationAlgorithm::TauLeap(TauLeapOptions::default()));
        let sample = sample_steady_state(&sim, &[200], &mut policy, &options, 13).unwrap();
        assert_eq!(sample.len(), 60);
        let mean: f64 = sample.states().iter().map(|s| s[0]).sum::<f64>() / sample.len() as f64;
        assert!(
            (mean - 0.5).abs() < 0.1,
            "tau-leap stationary mean {mean} far from 0.5"
        );
        // leaping makes the long run cheap: far fewer steps than the
        // ~2000-events-per-unit-time exact run would need
        assert!(sample.events() < 20_000, "{} steps", sample.events());
    }

    #[test]
    #[should_panic(expected = "sample interval")]
    fn options_validate_interval() {
        let _ = SteadyStateOptions::new(1.0, 0.0, 5);
    }

    #[test]
    fn try_new_reports_typed_errors_instead_of_panicking() {
        assert!(SteadyStateOptions::try_new(1.0, 0.5, 5).is_ok());
        for (burn_in, interval, samples) in [
            (-1.0, 0.5, 5),
            (f64::NAN, 0.5, 5),
            (1.0, 0.0, 5),
            (1.0, f64::INFINITY, 5),
            (1.0, 0.5, 0),
        ] {
            let err = SteadyStateOptions::try_new(burn_in, interval, samples).unwrap_err();
            assert!(matches!(err, SimError::InvalidInput { .. }));
        }
    }

    #[test]
    fn truncated_long_run_is_a_typed_error_not_a_partial_sample() {
        let sim = Simulator::new(mean_reverting_model(), 200).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let options =
            SteadyStateOptions::new(20.0, 0.5, 60).budget(RunBudget::unlimited().max_events(100));
        let err = sample_steady_state(&sim, &[20], &mut policy, &options, 13).unwrap_err();
        assert!(matches!(err, SimError::EventBudgetExhausted { .. }));
    }
}
