use std::fmt;

use mfu_ctmc::CtmcError;
use mfu_num::NumError;

/// Error type for the stochastic-simulation layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Simulation options or initial conditions were invalid.
    InvalidInput {
        /// Description of the offending input.
        message: String,
    },
    /// A parameter policy produced a value outside the model's parameter space.
    PolicyOutOfRange {
        /// Time at which the violation occurred.
        time: f64,
    },
    /// The event budget was exhausted before reaching the time horizon.
    EventBudgetExhausted {
        /// Number of events simulated before giving up.
        events: usize,
        /// Simulated time reached when the budget ran out.
        reached: f64,
    },
    /// An error bubbled up from the modelling layer.
    Model(CtmcError),
    /// An error bubbled up from the numerical layer.
    Numerical(NumError),
}

impl SimError {
    /// Creates an [`SimError::InvalidInput`] from anything printable.
    pub fn invalid_input(message: impl Into<String>) -> Self {
        SimError::InvalidInput {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            SimError::PolicyOutOfRange { time } => {
                write!(f, "parameter policy left the parameter space at t = {time}")
            }
            SimError::EventBudgetExhausted { events, reached } => {
                write!(
                    f,
                    "event budget exhausted after {events} events at t = {reached}"
                )
            }
            SimError::Model(err) => write!(f, "model error: {err}"),
            SimError::Numerical(err) => write!(f, "numerical error: {err}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(err) => Some(err),
            SimError::Numerical(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CtmcError> for SimError {
    fn from(err: CtmcError) -> Self {
        SimError::Model(err)
    }
}

impl From<NumError> for SimError {
    fn from(err: NumError) -> Self {
        SimError::Numerical(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::invalid_input("bad scale")
            .to_string()
            .contains("bad scale"));
        assert!(SimError::PolicyOutOfRange { time: 1.5 }
            .to_string()
            .contains("1.5"));
        let err = SimError::EventBudgetExhausted {
            events: 10,
            reached: 0.7,
        };
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let err: SimError = CtmcError::invalid_model("oops").into();
        assert!(std::error::Error::source(&err).is_some());
        let err: SimError = NumError::invalid_argument("oops").into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SimError>();
    }
}
