use std::fmt;

use mfu_ctmc::CtmcError;
use mfu_guard::TruncationReason;
use mfu_num::NumError;

/// Error type for the stochastic-simulation layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Simulation options or initial conditions were invalid.
    InvalidInput {
        /// Description of the offending input.
        message: String,
    },
    /// A parameter policy produced a value outside the model's parameter space.
    PolicyOutOfRange {
        /// Time at which the violation occurred.
        time: f64,
    },
    /// The event budget was exhausted before reaching the time horizon.
    ///
    /// Single runs no longer produce this: a tripped budget returns `Ok`
    /// with a truncated [`Outcome`](mfu_guard::Outcome) and the
    /// trajectory-so-far. Aggregating engines (ensemble, steady-state) that
    /// need the full horizon convert that truncation back into this error.
    EventBudgetExhausted {
        /// Number of events simulated before giving up.
        events: usize,
        /// Simulated time reached when the budget ran out.
        reached: f64,
    },
    /// A run was truncated by a [`RunBudget`](mfu_guard::RunBudget) cap in a
    /// context where a prefix is not a meaningful result (ensemble grids,
    /// steady-state sampling).
    Truncated {
        /// Which budget cap tripped.
        reason: TruncationReason,
        /// Number of events simulated before truncation.
        events: usize,
        /// Simulated time reached when the budget tripped.
        reached: f64,
    },
    /// A transition rate evaluated to NaN, an infinity, or a negative value.
    ///
    /// Detected at the rate-program boundary and attributed to the offending
    /// rule and simulated time instead of poisoning downstream arithmetic.
    InvalidRate {
        /// Name of the transition whose rate was invalid.
        rule: String,
        /// Simulated time at which the rate was evaluated.
        time: f64,
        /// The offending rate value.
        value: f64,
    },
    /// An error bubbled up from the modelling layer.
    Model(CtmcError),
    /// An error bubbled up from the numerical layer.
    Numerical(NumError),
}

impl SimError {
    /// Creates an [`SimError::InvalidInput`] from anything printable.
    pub fn invalid_input(message: impl Into<String>) -> Self {
        SimError::InvalidInput {
            message: message.into(),
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidInput { message } => write!(f, "invalid input: {message}"),
            SimError::PolicyOutOfRange { time } => {
                write!(f, "parameter policy left the parameter space at t = {time}")
            }
            SimError::EventBudgetExhausted { events, reached } => {
                write!(
                    f,
                    "event budget exhausted after {events} events at t = {reached}"
                )
            }
            SimError::Truncated {
                reason,
                events,
                reached,
            } => {
                write!(
                    f,
                    "run truncated ({reason}) after {events} events at t = {reached}"
                )
            }
            SimError::InvalidRate { rule, time, value } => {
                write!(
                    f,
                    "transition `{rule}` produced invalid rate {value} at t = {time}"
                )
            }
            SimError::Model(err) => write!(f, "model error: {err}"),
            SimError::Numerical(err) => write!(f, "numerical error: {err}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(err) => Some(err),
            SimError::Numerical(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CtmcError> for SimError {
    fn from(err: CtmcError) -> Self {
        SimError::Model(err)
    }
}

impl From<NumError> for SimError {
    fn from(err: NumError) -> Self {
        SimError::Numerical(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::invalid_input("bad scale")
            .to_string()
            .contains("bad scale"));
        assert!(SimError::PolicyOutOfRange { time: 1.5 }
            .to_string()
            .contains("1.5"));
        let err = SimError::EventBudgetExhausted {
            events: 10,
            reached: 0.7,
        };
        assert!(err.to_string().contains("10"));
        let err = SimError::Truncated {
            reason: TruncationReason::WallClock,
            events: 10,
            reached: 0.7,
        };
        assert!(err.to_string().contains("wall-clock"));
        let err = SimError::InvalidRate {
            rule: "infect".to_string(),
            time: 2.25,
            value: f64::NAN,
        };
        let text = err.to_string();
        assert!(text.contains("infect") && text.contains("2.25") && text.contains("NaN"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let err: SimError = CtmcError::invalid_model("oops").into();
        assert!(std::error::Error::source(&err).is_some());
        let err: SimError = NumError::invalid_argument("oops").into();
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<SimError>();
    }
}
