//! Exact stochastic simulation (Gillespie / SSA) of population models.
//!
//! The simulator interprets a [`PopulationModel`] at a finite scale `N`: the
//! state is the vector of integer counts, transition `k` fires at rate
//! `N·β_k(x, ϑ)` where `x` is the normalised state, and the parameter signal
//! `ϑ(t)` is produced by a [`ParameterPolicy`]
//! queried at every event. This is exactly the finite-`N` imprecise
//! population process whose `N → ∞` behaviour the paper characterises.

use mfu_ctmc::population::PopulationModel;
use mfu_num::ode::Trajectory;
use mfu_num::StateVec;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::policy::ParameterPolicy;
use crate::{Result, SimError};

/// Options controlling a single stochastic simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationOptions {
    /// Time horizon of the simulation.
    pub t_end: f64,
    /// Hard cap on the number of simulated events.
    pub max_events: usize,
    /// Record one trajectory point every `record_stride` events (the initial
    /// and final states are always recorded).
    pub record_stride: usize,
    /// When set, record at most one trajectory point per `record_interval`
    /// time units (combined with `record_stride`, both conditions must hold).
    /// This bounds memory usage for long runs at large `N`.
    pub record_interval: Option<f64>,
    /// When `true`, a policy value outside the model's parameter space is an
    /// error; when `false` it is clamped into the space.
    pub strict_policy: bool,
}

impl SimulationOptions {
    /// Creates options for a run over `[0, t_end]` with default budgets.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is not positive and finite.
    pub fn new(t_end: f64) -> Self {
        assert!(
            t_end > 0.0 && t_end.is_finite(),
            "t_end must be positive and finite"
        );
        SimulationOptions {
            t_end,
            max_events: 50_000_000,
            record_stride: 1,
            record_interval: None,
            strict_policy: true,
        }
    }

    /// Sets the event budget.
    #[must_use]
    pub fn max_events(mut self, n: usize) -> Self {
        self.max_events = n.max(1);
        self
    }

    /// Sets the recording stride.
    #[must_use]
    pub fn record_stride(mut self, stride: usize) -> Self {
        self.record_stride = stride.max(1);
        self
    }

    /// Records at most one trajectory point per `interval` time units.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    #[must_use]
    pub fn record_interval(mut self, interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "record interval must be positive"
        );
        self.record_interval = Some(interval);
        self
    }

    /// Clamp out-of-range policy values instead of failing.
    #[must_use]
    pub fn lenient_policy(mut self) -> Self {
        self.strict_policy = false;
        self
    }
}

/// The result of one stochastic simulation run.
#[derive(Debug, Clone)]
pub struct SimulationRun {
    trajectory: Trajectory,
    events: usize,
    final_counts: Vec<i64>,
}

impl SimulationRun {
    /// The recorded trajectory of *normalised* states.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// Number of CTMC events simulated.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Final integer counts.
    pub fn final_counts(&self) -> &[i64] {
        &self.final_counts
    }

    /// Consumes the run and returns its trajectory.
    pub fn into_trajectory(self) -> Trajectory {
        self.trajectory
    }
}

/// Exact stochastic simulator for a population model at a fixed scale.
#[derive(Debug, Clone)]
pub struct Simulator {
    model: PopulationModel,
    scale: usize,
    jumps: Vec<Vec<i64>>,
}

impl Simulator {
    /// Creates a simulator for `model` at population scale `scale`.
    ///
    /// # Errors
    ///
    /// Returns an error if `scale == 0`.
    pub fn new(model: PopulationModel, scale: usize) -> Result<Self> {
        if scale == 0 {
            return Err(SimError::invalid_input("population scale must be positive"));
        }
        let jumps = model
            .transitions()
            .iter()
            .map(|t| t.change().iter().map(|&v| v.round() as i64).collect())
            .collect();
        Ok(Simulator {
            model,
            scale,
            jumps,
        })
    }

    /// The underlying population model.
    pub fn model(&self) -> &PopulationModel {
        &self.model
    }

    /// The population scale `N`.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Runs one replication with a fresh RNG seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial counts have the wrong dimension or are
    /// negative, if a rate is invalid, if the policy leaves the parameter
    /// space under strict policy checking, or if the event budget is
    /// exhausted before `t_end`.
    pub fn simulate(
        &self,
        initial_counts: &[i64],
        policy: &mut dyn ParameterPolicy,
        options: &SimulationOptions,
        seed: u64,
    ) -> Result<SimulationRun> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.simulate_with_rng(initial_counts, policy, options, &mut rng)
    }

    /// Runs one replication with a caller-provided RNG.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::simulate`].
    pub fn simulate_with_rng(
        &self,
        initial_counts: &[i64],
        policy: &mut dyn ParameterPolicy,
        options: &SimulationOptions,
        rng: &mut StdRng,
    ) -> Result<SimulationRun> {
        if initial_counts.len() != self.model.dim() {
            return Err(SimError::invalid_input(format!(
                "expected {} initial counts, got {}",
                self.model.dim(),
                initial_counts.len()
            )));
        }
        if initial_counts.iter().any(|&c| c < 0) {
            return Err(SimError::invalid_input(
                "initial counts must be non-negative",
            ));
        }
        policy.reset();

        let dim = self.model.dim();
        let n_transitions = self.model.transitions().len();
        let scale = self.scale as f64;

        let mut counts = initial_counts.to_vec();
        let mut x: StateVec = counts.iter().map(|&c| c as f64 / scale).collect();
        let mut t = 0.0_f64;
        let mut events = 0usize;
        let mut rates = vec![0.0_f64; n_transitions];

        let mut trajectory = Trajectory::new(dim);
        trajectory.push(0.0, x.clone())?;
        let mut next_record_time = options.record_interval.map_or(0.0, |dt| dt);

        loop {
            // Query the policy, validating or clamping its output.
            let theta_raw = policy.value(t, &x, rng);
            let theta = if self.model.params().contains(&theta_raw) {
                theta_raw
            } else if options.strict_policy {
                return Err(SimError::PolicyOutOfRange { time: t });
            } else {
                self.model.params().clamp(&theta_raw)?
            };

            // Compute propensities.
            let mut total = 0.0_f64;
            for (k, class) in self.model.transitions().iter().enumerate() {
                let density = class.rate(&x, &theta);
                if !density.is_finite() || density < 0.0 {
                    return Err(SimError::Model(mfu_ctmc::CtmcError::InvalidRate {
                        transition: class.name().to_string(),
                        rate: density,
                    }));
                }
                rates[k] = density * scale;
                total += rates[k];
            }

            if total <= 0.0 {
                // Absorbing state: nothing will ever fire again.
                break;
            }

            // Exponential waiting time.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let dt = -u.ln() / total;
            if t + dt >= options.t_end {
                break;
            }
            t += dt;

            // Choose which transition fires.
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n_transitions - 1;
            for (k, &r) in rates.iter().enumerate() {
                if target < r {
                    chosen = k;
                    break;
                }
                target -= r;
            }

            // Apply the jump; a jump that would drive a count negative is
            // dropped (it can only happen when a rate does not vanish exactly
            // at the boundary due to floating-point noise).
            let jump = &self.jumps[chosen];
            if counts.iter().zip(jump.iter()).all(|(c, j)| c + j >= 0) {
                for (c, j) in counts.iter_mut().zip(jump.iter()) {
                    *c += j;
                }
                for (i, &c) in counts.iter().enumerate() {
                    x[i] = c as f64 / scale;
                }
            }

            events += 1;
            let stride_ok = events.is_multiple_of(options.record_stride);
            let interval_ok = match options.record_interval {
                None => true,
                Some(dt) => {
                    if t >= next_record_time {
                        next_record_time +=
                            dt * ((t - next_record_time) / dt).floor().max(0.0) + dt;
                        true
                    } else {
                        false
                    }
                }
            };
            if stride_ok && interval_ok {
                trajectory.push(t, x.clone())?;
            }
            if events >= options.max_events {
                return Err(SimError::EventBudgetExhausted { events, reached: t });
            }
        }

        if options.t_end > trajectory.last_time() {
            trajectory.push(options.t_end, x.clone())?;
        }

        Ok(SimulationRun {
            trajectory,
            events,
            final_counts: counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ConstantPolicy, HysteresisPolicy};
    use mfu_ctmc::params::{Interval, ParamSpace};
    use mfu_ctmc::transition::TransitionClass;

    fn bike_model() -> PopulationModel {
        let params = ParamSpace::new(vec![
            ("arrival", Interval::new(0.5, 2.0).unwrap()),
            ("return", Interval::new(0.5, 2.0).unwrap()),
        ])
        .unwrap();
        PopulationModel::builder(1, params)
            .variable_names(vec!["bikes"])
            .transition(TransitionClass::new(
                "pickup",
                [-1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] > 0.0 {
                        th[0]
                    } else {
                        0.0
                    }
                },
            ))
            .transition(TransitionClass::new(
                "return",
                [1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] < 1.0 {
                        th[1]
                    } else {
                        0.0
                    }
                },
            ))
            .build()
            .unwrap()
    }

    /// A pure-death model that reaches an absorbing state.
    fn death_model() -> PopulationModel {
        let params = ParamSpace::single("rate", 1.0, 1.0).unwrap();
        PopulationModel::builder(1, params)
            .transition(TransitionClass::new(
                "die",
                [-1.0],
                |x: &StateVec, th: &[f64]| th[0] * x[0],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn simulation_respects_bounds_and_horizon() {
        let sim = Simulator::new(bike_model(), 50).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let run = sim
            .simulate(&[25], &mut policy, &SimulationOptions::new(20.0), 1)
            .unwrap();
        assert!(run.events() > 0);
        assert!((run.trajectory().last_time() - 20.0).abs() < 1e-12);
        for (_, state) in run.trajectory().iter() {
            assert!(state[0] >= 0.0 && state[0] <= 1.0);
        }
        assert!(*run.final_counts().iter().max().unwrap() <= 50);
    }

    #[test]
    fn absorbing_state_ends_simulation_early() {
        let sim = Simulator::new(death_model(), 20).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0]);
        let run = sim
            .simulate(&[20], &mut policy, &SimulationOptions::new(1_000.0), 3)
            .unwrap();
        assert_eq!(run.final_counts(), &[0]);
        assert!(run.events() == 20);
        assert!((run.trajectory().last_state()[0]).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulator::new(bike_model(), 30).unwrap();
        let options = SimulationOptions::new(5.0);
        let mut p1 = ConstantPolicy::new(vec![1.5, 0.8]);
        let mut p2 = ConstantPolicy::new(vec![1.5, 0.8]);
        let a = sim.simulate(&[10], &mut p1, &options, 99).unwrap();
        let b = sim.simulate(&[10], &mut p2, &options, 99).unwrap();
        assert_eq!(a.final_counts(), b.final_counts());
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn strict_policy_rejects_out_of_range_values() {
        let sim = Simulator::new(bike_model(), 10).unwrap();
        let mut policy = ConstantPolicy::new(vec![10.0, 1.0]); // outside [0.5, 2]
        let err = sim
            .simulate(&[5], &mut policy, &SimulationOptions::new(1.0), 1)
            .unwrap_err();
        assert!(matches!(err, SimError::PolicyOutOfRange { .. }));
        // lenient mode clamps instead
        let run = sim
            .simulate(
                &[5],
                &mut policy,
                &SimulationOptions::new(1.0).lenient_policy(),
                1,
            )
            .unwrap();
        assert!(run.events() > 0);
    }

    #[test]
    fn input_validation() {
        let sim = Simulator::new(bike_model(), 10).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        assert!(sim
            .simulate(&[1, 2], &mut policy, &SimulationOptions::new(1.0), 1)
            .is_err());
        assert!(sim
            .simulate(&[-1], &mut policy, &SimulationOptions::new(1.0), 1)
            .is_err());
        assert!(Simulator::new(bike_model(), 0).is_err());
    }

    #[test]
    fn event_budget_is_enforced() {
        let sim = Simulator::new(bike_model(), 1000).unwrap();
        let mut policy = ConstantPolicy::new(vec![2.0, 2.0]);
        let options = SimulationOptions::new(100.0).max_events(50);
        let err = sim.simulate(&[500], &mut policy, &options, 5).unwrap_err();
        assert!(matches!(
            err,
            SimError::EventBudgetExhausted { events: 50, .. }
        ));
    }

    #[test]
    fn record_stride_reduces_trajectory_size() {
        let sim = Simulator::new(bike_model(), 200).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let dense = sim
            .simulate(&[100], &mut policy, &SimulationOptions::new(5.0), 11)
            .unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let sparse = sim
            .simulate(
                &[100],
                &mut policy,
                &SimulationOptions::new(5.0).record_stride(10),
                11,
            )
            .unwrap();
        assert!(sparse.trajectory().len() < dense.trajectory().len());
        assert_eq!(sparse.final_counts(), dense.final_counts());
    }

    #[test]
    fn feedback_policy_observes_the_simulated_state() {
        // A hysteresis policy on the bike model: pickups are fast while the
        // station is full, slow while it is empty — occupancy should hover
        // between the thresholds rather than drifting to a boundary.
        let sim = Simulator::new(bike_model(), 200).unwrap();
        let mut policy = HysteresisPolicy::new(vec![0.5, 1.0], 0, 0.5, 2.0, 0, 0.3, 0.7, true);
        let run = sim
            .simulate(&[100], &mut policy, &SimulationOptions::new(50.0), 17)
            .unwrap();
        let occupancy = run.trajectory().last_state()[0];
        assert!(
            occupancy > 0.05 && occupancy < 0.95,
            "occupancy {occupancy} drifted to a boundary"
        );
    }

    #[test]
    fn mean_of_many_runs_tracks_mean_field() {
        // For the symmetric bike model the mean-field fixed point is 0.5; the
        // empirical mean over replications at moderate N should be close.
        let sim = Simulator::new(bike_model(), 100).unwrap();
        let options = SimulationOptions::new(30.0).record_stride(64);
        let mut sum = 0.0;
        let replications = 20;
        for seed in 0..replications {
            let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
            let run = sim.simulate(&[100], &mut policy, &options, seed).unwrap();
            sum += run.trajectory().last_state()[0];
        }
        let mean = sum / replications as f64;
        assert!(
            (mean - 0.5).abs() < 0.15,
            "empirical mean {mean} far from mean field 0.5"
        );
    }
}
