//! Exact stochastic simulation (Gillespie / SSA) of population models.
//!
//! The simulator interprets a [`PopulationModel`] at a finite scale `N`: the
//! state is the vector of integer counts, transition `k` fires at rate
//! `N·β_k(x, ϑ)` where `x` is the normalised state, and the parameter signal
//! `ϑ(t)` is produced by a [`ParameterPolicy`]
//! queried at every event. This is exactly the finite-`N` imprecise
//! population process whose `N → ∞` behaviour the paper characterises.
//!
//! # Propensity maintenance
//!
//! The naive SSA loop re-evaluates all `K` transition rates after every
//! event — `O(K)` rate evaluations where `O(affected)` suffice. The
//! simulator therefore precomputes a *dependency graph* from the
//! stoichiometry and the per-transition species supports (known for rates
//! compiled by `mfu-lang`, or declared via
//! [`TransitionClass::with_species_support`](mfu_ctmc::transition::TransitionClass::with_species_support)):
//! after transition `k` fires, only the transitions whose rate reads a
//! species changed by `k` are re-evaluated. [`PropensityStrategy`] selects
//! between this hot path, an incremental-total variant, and the full-rescan
//! reference implementation; the default [`PropensityStrategy::DependencyGraph`]
//! is *bit-identical* to the reference for every model (checked across the
//! scenario registry by `tests/ssa_dependency.rs`).
//!
//! # Event selection
//!
//! Orthogonally to propensity *maintenance*, the per-event transition
//! *selection* is controlled by a
//! [`SelectionStrategy`]: the `O(K)`
//! roulette scan (the bit-exact reference), an `O(log K)` partial-sum
//! tree, or `O(1)`-expected composition-rejection — see the
//! [`selection`](crate::selection) module for the data structures and the
//! ulp policy. The default picks by transition count. Constant parameter
//! policies additionally declare themselves via
//! [`ParameterPolicy::is_constant`], letting the simulator query ϑ once
//! per run instead of once per event.

use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::apply_firings;
use mfu_guard::{BudgetTracker, FaultPlan, Outcome, RunBudget, TruncationReason};
use mfu_num::ode::Trajectory;
use mfu_num::StateVec;
use mfu_obs::{Counter, Field, Metrics, Obs};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::policy::ParameterPolicy;
use crate::selection::{SelectionStrategy, Selector};
use crate::tauleap::TauLeapOptions;
use crate::{Result, SimError};

/// Which stochastic simulation algorithm a run uses.
///
/// [`SimulationAlgorithm::Exact`] is the event-by-event Gillespie SSA —
/// statistically exact at any scale, but `O(N)` events per unit time.
/// [`SimulationAlgorithm::TauLeap`] is the explicit τ-leaping
/// approximation of the [`tauleap`](crate::tauleap) module: many firings
/// per step under the Cao–Gillespie step-size bound, making the large-`N`
/// regime (where the paper's mean-field guarantees bite) affordable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimulationAlgorithm {
    /// Event-by-event exact SSA (the default).
    Exact,
    /// Explicit τ-leaping with adaptive step selection.
    TauLeap(TauLeapOptions),
}

impl std::fmt::Display for SimulationAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationAlgorithm::Exact => f.write_str("exact"),
            SimulationAlgorithm::TauLeap(options) => {
                write!(f, "tau-leap:{}", options.epsilon)
            }
        }
    }
}

/// How the simulator maintains the propensity vector between events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PropensityStrategy {
    /// Re-evaluate every transition rate after every event — the reference
    /// implementation, kept for cross-checking the optimised paths.
    FullRescan,
    /// Re-evaluate only the transitions whose rate depends on a species
    /// changed by the fired jump (all of them when the parameter signal
    /// moved), then re-sum the propensity total over the full rate array.
    /// The re-summation reproduces the reference's addition order, so this
    /// strategy is bit-identical to [`PropensityStrategy::FullRescan`] while
    /// skipping the expensive rate evaluations.
    DependencyGraph,
    /// Like [`PropensityStrategy::DependencyGraph`], but the propensity
    /// total is maintained incrementally (`total += new − old`) instead of
    /// re-summed, with a full re-summation every `refresh_every` events to
    /// bound floating-point drift. Saves the `O(K)` additions per event on
    /// models with many transitions, at the price of totals that can differ
    /// from the reference by an ulp between refreshes.
    IncrementalTotal {
        /// Events between two full re-summations of the propensity total
        /// (values below 1 are treated as 1).
        refresh_every: usize,
    },
}

impl std::fmt::Display for PropensityStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropensityStrategy::FullRescan => f.write_str("full-rescan"),
            PropensityStrategy::DependencyGraph => f.write_str("dependency-graph"),
            PropensityStrategy::IncrementalTotal { refresh_every } => {
                write!(f, "incremental:{refresh_every}")
            }
        }
    }
}

/// Options controlling a single stochastic simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationOptions {
    /// Time horizon of the simulation.
    pub t_end: f64,
    /// Hard cap on the number of simulated events.
    pub max_events: usize,
    /// Record one trajectory point every `record_stride` events (the initial
    /// and final states are always recorded).
    pub record_stride: usize,
    /// When set, record at most one trajectory point per `record_interval`
    /// time units (combined with `record_stride`, both conditions must hold).
    /// This bounds memory usage for long runs at large `N`.
    pub record_interval: Option<f64>,
    /// When `true`, a policy value outside the model's parameter space is an
    /// error; when `false` it is clamped into the space.
    pub strict_policy: bool,
    /// How propensities are maintained between events (defaults to the
    /// bit-identical [`PropensityStrategy::DependencyGraph`] hot path).
    pub propensity: PropensityStrategy,
    /// How the firing transition is selected among the candidates
    /// (defaults to [`SelectionStrategy::Auto`], which picks by transition
    /// count).
    pub selection: SelectionStrategy,
    /// Which simulation algorithm the run uses (defaults to the exact
    /// event-by-event SSA; see [`SimulationAlgorithm::TauLeap`] for the
    /// approximate large-`N` engine).
    pub algorithm: SimulationAlgorithm,
    /// Resource budget for the run (defaults to unlimited). A tripped budget
    /// truncates the run gracefully: the engine returns `Ok` with the
    /// trajectory-so-far and [`SimulationRun::outcome`] reporting the reason.
    /// An untripped budget never perturbs the run — budget checks touch
    /// neither the RNG nor any float, so trajectories stay bit-identical.
    pub budget: RunBudget,
}

impl SimulationOptions {
    /// Creates options for a run over `[0, t_end]` with default budgets.
    ///
    /// # Panics
    ///
    /// Panics if `t_end` is not positive and finite.
    pub fn new(t_end: f64) -> Self {
        assert!(
            t_end > 0.0 && t_end.is_finite(),
            "t_end must be positive and finite"
        );
        SimulationOptions {
            t_end,
            max_events: 50_000_000,
            record_stride: 1,
            record_interval: None,
            strict_policy: true,
            propensity: PropensityStrategy::DependencyGraph,
            selection: SelectionStrategy::Auto,
            algorithm: SimulationAlgorithm::Exact,
            budget: RunBudget::unlimited(),
        }
    }

    /// Selects the simulation algorithm.
    #[must_use]
    pub fn algorithm(mut self, algorithm: SimulationAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Shorthand for selecting τ-leaping with the given options.
    #[must_use]
    pub fn tau_leap(self, options: TauLeapOptions) -> Self {
        self.algorithm(SimulationAlgorithm::TauLeap(options))
    }

    /// Selects the propensity-maintenance strategy.
    #[must_use]
    pub fn propensity_strategy(mut self, strategy: PropensityStrategy) -> Self {
        self.propensity = strategy;
        self
    }

    /// Selects the transition-selection strategy.
    #[must_use]
    pub fn selection_strategy(mut self, strategy: SelectionStrategy) -> Self {
        self.selection = strategy;
        self
    }

    /// Sets the event budget.
    #[must_use]
    pub fn max_events(mut self, n: usize) -> Self {
        self.max_events = n.max(1);
        self
    }

    /// Sets the recording stride.
    #[must_use]
    pub fn record_stride(mut self, stride: usize) -> Self {
        self.record_stride = stride.max(1);
        self
    }

    /// Records at most one trajectory point per `interval` time units.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    #[must_use]
    pub fn record_interval(mut self, interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "record interval must be positive"
        );
        self.record_interval = Some(interval);
        self
    }

    /// Clamp out-of-range policy values instead of failing.
    #[must_use]
    pub fn lenient_policy(mut self) -> Self {
        self.strict_policy = false;
        self
    }

    /// Sets the resource budget (wall-clock, events, τ-leap caps).
    ///
    /// Tripped budgets truncate gracefully — see
    /// [`SimulationOptions::budget`].
    #[must_use]
    pub fn budget(mut self, budget: RunBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The effective event cap: the engine-level `max_events` combined with
    /// the budget's event cap, whichever is smaller.
    pub(crate) fn effective_max_events(&self) -> usize {
        match self.budget.max_events {
            Some(cap) => self
                .max_events
                .min(usize::try_from(cap).unwrap_or(usize::MAX)),
            None => self.max_events,
        }
    }
}

/// Recording policy shared by the exact and τ-leap engines: a trajectory
/// point is pushed after a step when both the stride and the (optional)
/// minimum-interval condition hold. Keeping the logic in one place is
/// what makes the two engines' recording behaviour identical by
/// construction.
pub(crate) struct Recorder {
    stride: usize,
    interval: Option<f64>,
    next_time: f64,
}

impl Recorder {
    pub(crate) fn new(options: &SimulationOptions) -> Self {
        Recorder {
            stride: options.record_stride,
            interval: options.record_interval,
            next_time: options.record_interval.map_or(0.0, |dt| dt),
        }
    }

    pub(crate) fn should_record(&mut self, steps: usize, t: f64) -> bool {
        let stride_ok = steps.is_multiple_of(self.stride);
        let interval_ok = match self.interval {
            None => true,
            Some(dt) => {
                if t >= self.next_time {
                    self.next_time += dt * ((t - self.next_time) / dt).floor().max(0.0) + dt;
                    true
                } else {
                    false
                }
            }
        };
        stride_ok && interval_ok
    }
}

/// Per-run internals counted by the engines.
///
/// Both engines accumulate these in plain run-local `u64`s
/// *unconditionally* — register increments cost nothing measurable next
/// to a rate evaluation — and flush them into an enabled
/// [`Metrics`] handle once per run. The counters are
/// therefore (a) deterministic in the seed, (b) available on every
/// [`SimulationRun`] even with observability off, and (c) incapable of
/// perturbing the simulation: nothing here touches the RNG or any float.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCounters {
    /// Transition firings (exact jumps, or τ-leap steps plus fallback SSA
    /// steps) — equals [`SimulationRun::events`].
    pub events_fired: u64,
    /// Individual rate evaluations (exact-engine maintenance, τ-leap
    /// rescans and fallback-burst rescans alike).
    pub propensity_evals: u64,
    /// Rate evaluations avoided by the dependency graph (transitions left
    /// untouched after a firing).
    pub propensity_skips: u64,
    /// Rejected candidate draws inside composition–rejection selection.
    pub selection_rejections: u64,
    /// Accepted τ-leap steps.
    pub tau_leap_steps: u64,
    /// τ-halvings forced by the negative-population guard.
    pub tau_halvings: u64,
    /// Exact-SSA fallback bursts entered by the τ-leap engine.
    pub tau_fallback_bursts: u64,
    /// Individual exact-SSA steps taken inside fallback bursts.
    pub tau_fallback_steps: u64,
    /// Poisson firing-count draws made by the τ-leap engine.
    pub poisson_draws: u64,
    /// Genuine (non-amortised) wall-clock reads performed by the run's
    /// budget tracker; zero when no wall-clock budget is set.
    pub budget_checks: u64,
    /// 1 when the τ-leap run demoted itself to exact SSA after repeated
    /// halvings, 0 otherwise.
    pub tau_demotions: u64,
}

impl SimCounters {
    /// Adds every counter into an enabled metrics handle (no-op when the
    /// handle is disabled) and bumps the run count.
    pub fn flush_to(&self, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        metrics.add(Counter::SimEventsFired, self.events_fired);
        metrics.add(Counter::SimPropensityEvals, self.propensity_evals);
        metrics.add(Counter::SimPropensitySkips, self.propensity_skips);
        metrics.add(Counter::SimSelectionRejections, self.selection_rejections);
        metrics.add(Counter::SimTauLeapSteps, self.tau_leap_steps);
        metrics.add(Counter::SimTauHalvings, self.tau_halvings);
        metrics.add(Counter::SimTauFallbackBursts, self.tau_fallback_bursts);
        metrics.add(Counter::SimTauFallbackSteps, self.tau_fallback_steps);
        metrics.add(Counter::SimPoissonDraws, self.poisson_draws);
        metrics.add(Counter::SimBudgetChecks, self.budget_checks);
        metrics.add(Counter::SimTauDemotions, self.tau_demotions);
        metrics.add(Counter::SimRuns, 1);
    }
}

/// The result of one stochastic simulation run.
#[derive(Debug, Clone)]
pub struct SimulationRun {
    trajectory: Trajectory,
    events: usize,
    final_counts: Vec<i64>,
    counters: SimCounters,
    resolved_selection: SelectionStrategy,
    resolved_propensity: PropensityStrategy,
    outcome: Outcome,
}

impl SimulationRun {
    /// Assembles a run from its parts (used by the exact engine here and
    /// the τ-leap engine in [`tauleap`](crate::tauleap)).
    pub(crate) fn from_parts(
        trajectory: Trajectory,
        events: usize,
        final_counts: Vec<i64>,
        counters: SimCounters,
        resolved_selection: SelectionStrategy,
        resolved_propensity: PropensityStrategy,
        outcome: Outcome,
    ) -> Self {
        SimulationRun {
            trajectory,
            events,
            final_counts,
            counters,
            resolved_selection,
            resolved_propensity,
            outcome,
        }
    }

    /// The recorded trajectory of *normalised* states.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// Number of CTMC events simulated.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Final integer counts.
    pub fn final_counts(&self) -> &[i64] {
        &self.final_counts
    }

    /// The run's internal counters (always populated, observability on or
    /// off — see [`SimCounters`]).
    pub fn counters(&self) -> &SimCounters {
        &self.counters
    }

    /// The selection strategy the run actually used: `Auto` resolved
    /// against the transition count for the exact engine, always
    /// [`SelectionStrategy::LinearScan`] for τ-leap fallback bursts.
    pub fn resolved_selection(&self) -> SelectionStrategy {
        self.resolved_selection
    }

    /// The propensity-maintenance strategy the run actually used (the
    /// τ-leap engine always rescans fully — a leap is `O(K)` anyway).
    pub fn resolved_propensity(&self) -> PropensityStrategy {
        self.resolved_propensity
    }

    /// How the run ended: [`Outcome::Completed`], or
    /// [`Outcome::Truncated`] when a [`RunBudget`] cap tripped. A truncated
    /// run still holds the full trajectory, counts, and counters up to
    /// `reached_t` — work is never discarded.
    pub fn outcome(&self) -> Outcome {
        self.outcome
    }

    /// True when the run stopped early because a budget cap tripped.
    pub fn is_truncated(&self) -> bool {
        self.outcome.is_truncated()
    }

    /// Consumes the run and returns its trajectory.
    pub fn into_trajectory(self) -> Trajectory {
        self.trajectory
    }
}

/// Exact stochastic simulator for a population model at a fixed scale.
#[derive(Debug, Clone)]
pub struct Simulator {
    model: PopulationModel,
    scale: usize,
    /// `sparse_jumps[k]` — the nonzero entries of transition `k`'s integer
    /// jump vector as `(species, change)` pairs, so applying an event costs
    /// `O(species changed)` instead of `O(dim)` (a real cost on generated
    /// models with hundreds of species).
    sparse_jumps: Vec<Vec<(usize, i64)>>,
    /// `dependencies[k]` — sorted indices of the transitions whose rate may
    /// change when transition `k` fires (those whose species support meets
    /// the species listed in `sparse_jumps[k]`; transitions with unknown support
    /// are conservatively included everywhere).
    dependencies: Vec<Vec<usize>>,
    /// Observability handle; defaults to disabled ([`Obs::none`]). Runs
    /// flush their [`SimCounters`] into it and emit run-summary trace
    /// events — never per-event records.
    obs: Obs,
    /// Deterministic fault-injection schedule; `None` (the default) costs a
    /// single branch per rate evaluation and leaves the run untouched.
    fault_plan: Option<FaultPlan>,
}

impl Simulator {
    /// Creates a simulator for `model` at population scale `scale`.
    ///
    /// # Errors
    ///
    /// Returns an error if `scale == 0`.
    pub fn new(model: PopulationModel, scale: usize) -> Result<Self> {
        if scale == 0 {
            return Err(SimError::invalid_input("population scale must be positive"));
        }
        let jumps: Vec<Vec<i64>> = model
            .transitions()
            .iter()
            .map(|t| t.change().iter().map(|&v| v.round() as i64).collect())
            .collect();
        let sparse_jumps: Vec<Vec<(usize, i64)>> = model
            .transitions()
            .iter()
            .map(mfu_ctmc::transition::TransitionClass::sparse_integer_changes)
            .collect();
        let dependencies = build_dependency_graph(&model, &jumps);
        Ok(Simulator {
            model,
            scale,
            sparse_jumps,
            dependencies,
            obs: Obs::none(),
            fault_plan: None,
        })
    }

    /// Attaches an observability bundle: run counters flush into
    /// `obs.metrics` and run summaries (plus τ-leap guard events) go to
    /// `obs.tracer`. Simulation results are bit-identical with any `obs`,
    /// enabled or not — the engines count into plain locals and only
    /// flush after the trajectory is complete.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The attached observability bundle (shared with the τ-leap engine).
    pub(crate) fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Arms a deterministic fault-injection schedule (testing facility).
    ///
    /// Faults are applied at the rate-evaluation and policy boundaries,
    /// keyed on the number of events fired — see [`FaultPlan`]. An injected
    /// NaN or negative rate surfaces as the same span-attributed
    /// [`SimError::InvalidRate`] a genuinely broken model would produce,
    /// which is exactly what the fault-injection harness asserts on.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The armed fault plan, if any (shared with the τ-leap engine).
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The underlying population model.
    pub fn model(&self) -> &PopulationModel {
        &self.model
    }

    /// The population scale `N`.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// The transition dependency graph: entry `k` lists the transitions
    /// re-evaluated after transition `k` fires.
    pub fn dependency_graph(&self) -> &[Vec<usize>] {
        &self.dependencies
    }

    /// The precomputed sparse `(species, change)` jump lists, one per
    /// transition (shared with the τ-leap engine, which scales them by
    /// Poisson firing counts).
    pub(crate) fn sparse_jumps(&self) -> &[Vec<(usize, i64)>] {
        &self.sparse_jumps
    }

    /// `true` when the dependency graph actually prunes work, i.e. at least
    /// one transition affects a strict subset of the others. Models whose
    /// rates all have unknown support degrade to full rescans regardless of
    /// the selected [`PropensityStrategy`].
    pub fn has_sparse_dependencies(&self) -> bool {
        let n = self.model.transitions().len();
        self.dependencies.iter().any(|d| d.len() < n)
    }

    /// Runs one replication with a fresh RNG seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial counts have the wrong dimension or are
    /// negative, if a rate is invalid, or if the policy leaves the parameter
    /// space under strict policy checking. An exhausted budget (events or
    /// wall-clock) is *not* an error: the run returns `Ok` with
    /// [`SimulationRun::outcome`] set to [`Outcome::Truncated`] and the
    /// trajectory-so-far intact.
    pub fn simulate(
        &self,
        initial_counts: &[i64],
        policy: &mut dyn ParameterPolicy,
        options: &SimulationOptions,
        seed: u64,
    ) -> Result<SimulationRun> {
        let mut rng = StdRng::seed_from_u64(seed);
        self.simulate_with_rng(initial_counts, policy, options, &mut rng)
    }

    /// Runs one replication with a caller-provided RNG.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::simulate`].
    pub fn simulate_with_rng(
        &self,
        initial_counts: &[i64],
        policy: &mut dyn ParameterPolicy,
        options: &SimulationOptions,
        rng: &mut StdRng,
    ) -> Result<SimulationRun> {
        if initial_counts.len() != self.model.dim() {
            return Err(SimError::invalid_input(format!(
                "expected {} initial counts, got {}",
                self.model.dim(),
                initial_counts.len()
            )));
        }
        if initial_counts.iter().any(|&c| c < 0) {
            return Err(SimError::invalid_input(
                "initial counts must be non-negative",
            ));
        }
        if let SimulationAlgorithm::TauLeap(leap) = options.algorithm {
            return crate::tauleap::simulate_tau_leap(
                self,
                initial_counts,
                policy,
                options,
                &leap,
                rng,
            );
        }
        policy.reset();

        let dim = self.model.dim();
        let n_transitions = self.model.transitions().len();
        let scale = self.scale as f64;

        let mut counts = initial_counts.to_vec();
        let mut x: StateVec = counts.iter().map(|&c| c as f64 / scale).collect();
        let mut t = 0.0_f64;
        let mut events = 0usize;
        let mut rates = vec![0.0_f64; n_transitions];
        // Run-local observability counters, maintained unconditionally
        // (see `SimCounters`): nothing here reads the obs handle, so the
        // numerical path is byte-for-byte the same with metrics on or off.
        let mut tally = SimCounters::default();
        // Budget enforcement: an exhausted cap breaks out of the loop with a
        // truncated outcome instead of erroring, so the prefix survives.
        // Neither check touches the RNG or any float.
        let max_events = options.effective_max_events();
        let mut tracker = BudgetTracker::start(&options.budget);
        let mut outcome = Outcome::Completed;

        let mut trajectory = Trajectory::new(dim);
        trajectory.push(0.0, x.clone())?;
        let mut recorder = Recorder::new(options);

        // Propensity bookkeeping for the dependency-graph strategies:
        // `pending` is the set of transitions whose rate may be stale
        // (`None` = all, e.g. on the first event or after a parameter move),
        // `last_theta` detects parameter moves (NaN never compares equal, so
        // the first iteration always rescans), `since_refresh` schedules the
        // incremental-total re-summations.
        let refresh_every = match options.propensity {
            PropensityStrategy::IncrementalTotal { refresh_every } => refresh_every.max(1),
            _ => usize::MAX,
        };
        let mut pending: Option<usize> = None;
        let mut last_theta: Vec<f64> = vec![f64::NAN; self.model.params().dim()];
        let mut since_refresh = 0usize;
        let mut total = 0.0_f64;

        // Transition selection: resolve the strategy against the model
        // size and keep the selector's structures in lockstep with `rates`.
        let mut selector = Selector::new(options.selection.resolve(n_transitions), n_transitions);

        // Constant policies are queried once (first iteration); everything
        // else is queried at every event, as before. A fault plan with
        // policy faults disables the short-circuit — the injected jump must
        // be observed at its scheduled event count.
        let policy_constant = policy.is_constant()
            && !self
                .fault_plan
                .as_ref()
                .is_some_and(FaultPlan::has_policy_faults);
        let mut theta: Vec<f64> = Vec::new();
        let mut theta_known = false;

        loop {
            // Query the policy, validating or clamping its output.
            let theta_changed = if theta_known && policy_constant {
                false
            } else {
                let mut theta_raw = policy.value(t, &x, rng);
                if let Some(plan) = &self.fault_plan {
                    plan.perturb_params(events as u64, &mut theta_raw);
                }
                theta = if self.model.params().contains(&theta_raw) {
                    theta_raw
                } else if options.strict_policy {
                    return Err(SimError::PolicyOutOfRange { time: t });
                } else {
                    self.model.params().clamp(&theta_raw)?
                };
                theta_known = true;
                theta != last_theta
            };

            // Maintain the propensities. The reference path rescans all
            // rates; the dependency-graph paths only re-evaluate stale ones.
            let rescan_all =
                matches!(options.propensity, PropensityStrategy::FullRescan) || theta_changed;
            if rescan_all {
                total = 0.0;
                for (k, rate) in rates.iter_mut().enumerate() {
                    *rate = self.eval_rate(k, &x, &theta, t, events as u64)?;
                    total += *rate;
                }
                tally.propensity_evals += n_transitions as u64;
                selector.rebuild(&rates);
                since_refresh = 0;
            } else {
                let mut delta = 0.0_f64;
                if let Some(fired) = pending {
                    let touched = &self.dependencies[fired];
                    for &m in touched {
                        let updated = self.eval_rate(m, &x, &theta, t, events as u64)?;
                        delta += updated - rates[m];
                        rates[m] = updated;
                        selector.update(m, updated);
                    }
                    tally.propensity_evals += touched.len() as u64;
                    tally.propensity_skips += (n_transitions - touched.len()) as u64;
                }
                match options.propensity {
                    PropensityStrategy::DependencyGraph => {
                        // Re-sum in index order: the exact addition sequence
                        // of the reference rescan, hence bit-identical.
                        total = rates.iter().sum();
                    }
                    PropensityStrategy::IncrementalTotal { .. } => {
                        total += delta;
                        since_refresh += 1;
                        if since_refresh >= refresh_every {
                            total = rates.iter().sum();
                            since_refresh = 0;
                        }
                    }
                    PropensityStrategy::FullRescan => unreachable!("handled by rescan_all"),
                }
            }
            if theta_changed {
                last_theta.clear();
                last_theta.extend_from_slice(&theta);
            }
            pending = None;

            if total <= 0.0 {
                // Absorbing state: nothing will ever fire again.
                break;
            }

            // Exponential waiting time.
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let dt = -u.ln() / total;
            if t + dt >= options.t_end {
                break;
            }
            t += dt;

            // Choose which transition fires. `None` means no transition has
            // a positive rate even though the bookkept `total` is positive —
            // only possible when an incrementally maintained total drifted
            // above the true (zero) rate sum — so the state is absorbing.
            // The historical code fell through to `n_transitions - 1` here,
            // which could fire a rate-0.0 (impossible) transition.
            let Some(chosen) =
                selector.choose_counting(&rates, total, rng, &mut tally.selection_rejections)
            else {
                break;
            };

            // Apply the jump; a jump that would drive a count negative is
            // dropped (it can only happen when a rate does not vanish exactly
            // at the boundary due to floating-point noise). A dropped jump
            // leaves the state — and therefore every propensity — unchanged.
            // Only the touched coordinates are visited, so an event costs
            // `O(species changed)` rather than `O(dim)`; the untouched
            // normalised coordinates keep their bit-identical values.
            let jump = &self.sparse_jumps[chosen];
            if apply_firings(&mut counts, jump, 1) {
                for &(i, _) in jump {
                    x[i] = counts[i] as f64 / scale;
                }
                pending = Some(chosen);
            }

            events += 1;
            // The `t > last` guard covers pathological rate explosions where
            // `dt` underflows below the ulp of `t` and the clock stalls: the
            // sample still fires, but recording it would duplicate a time.
            if recorder.should_record(events, t) && t > trajectory.last_time() {
                trajectory.push(t, x.clone())?;
            }
            if events >= max_events {
                outcome = Outcome::Truncated {
                    reason: TruncationReason::MaxEvents,
                    reached_t: t,
                };
                break;
            }
            if tracker.expired() {
                outcome = Outcome::Truncated {
                    reason: TruncationReason::WallClock,
                    reached_t: t,
                };
                break;
            }
        }

        // A completed run pins the horizon point; a truncated run pins the
        // state actually reached so the prefix stays internally consistent.
        let pin_time = match outcome {
            Outcome::Completed => options.t_end,
            Outcome::Truncated { reached_t, .. } => reached_t,
        };
        if pin_time > trajectory.last_time() {
            trajectory.push(pin_time, x.clone())?;
        }

        tally.budget_checks = tracker.checks();
        tally.events_fired = events as u64;
        let resolved_selection = options.selection.resolve(n_transitions);
        tally.flush_to(&self.obs.metrics);
        if self.obs.tracer.is_enabled() {
            self.obs.tracer.event(
                "sim_run",
                &[
                    ("algorithm", Field::Str("exact")),
                    ("t_end", Field::F64(options.t_end)),
                    ("events", Field::U64(tally.events_fired)),
                    ("propensity_evals", Field::U64(tally.propensity_evals)),
                    ("propensity_skips", Field::U64(tally.propensity_skips)),
                    (
                        "selection_rejections",
                        Field::U64(tally.selection_rejections),
                    ),
                    ("selection", Field::Str(&resolved_selection.to_string())),
                    ("propensity", Field::Str(&options.propensity.to_string())),
                    ("outcome", Field::Str(&outcome.to_string())),
                ],
            );
        }

        Ok(SimulationRun::from_parts(
            trajectory,
            events,
            counts,
            tally,
            resolved_selection,
            options.propensity,
            outcome,
        ))
    }

    /// Evaluates the scaled propensity of transition `k`, validating the
    /// density at the rate-program boundary.
    ///
    /// A NaN, infinite, or negative density — whether produced by the model
    /// or injected by the armed [`FaultPlan`] — is reported as a
    /// span-attributed [`SimError::InvalidRate`] naming the transition and
    /// the simulated time, instead of poisoning downstream arithmetic.
    #[inline]
    pub(crate) fn eval_rate(
        &self,
        k: usize,
        x: &StateVec,
        theta: &[f64],
        t: f64,
        events: u64,
    ) -> Result<f64> {
        let class = &self.model.transitions()[k];
        let mut density = class.rate(x, theta);
        if let Some(plan) = &self.fault_plan {
            density = plan.perturb_rate(k, events, density);
        }
        if !mfu_guard::rate_is_healthy(density) {
            return Err(SimError::InvalidRate {
                rule: class.name().to_string(),
                time: t,
                value: density,
            });
        }
        Ok(density * self.scale as f64)
    }
}

/// Builds the transition dependency graph: `result[k]` lists (sorted) the
/// transitions whose rate reads at least one species with a nonzero entry in
/// `jumps[k]`. Transitions with unknown species support (unannotated native
/// closures) are included in every list, so the graph is always safe — just
/// not sparse.
fn build_dependency_graph(model: &PopulationModel, jumps: &[Vec<i64>]) -> Vec<Vec<usize>> {
    let transitions = model.transitions();
    let supports: Vec<Option<&[usize]>> = transitions.iter().map(|t| t.species_support()).collect();
    jumps
        .iter()
        .map(|jump| {
            (0..transitions.len())
                .filter(|&m| match supports[m] {
                    None => true,
                    Some(support) => support
                        .iter()
                        .any(|&i| jump.get(i).is_some_and(|&j| j != 0)),
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ConstantPolicy, HysteresisPolicy};
    use mfu_ctmc::params::{Interval, ParamSpace};
    use mfu_ctmc::transition::TransitionClass;

    fn bike_model() -> PopulationModel {
        let params = ParamSpace::new(vec![
            ("arrival", Interval::new(0.5, 2.0).unwrap()),
            ("return", Interval::new(0.5, 2.0).unwrap()),
        ])
        .unwrap();
        PopulationModel::builder(1, params)
            .variable_names(vec!["bikes"])
            .transition(TransitionClass::new(
                "pickup",
                [-1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] > 0.0 {
                        th[0]
                    } else {
                        0.0
                    }
                },
            ))
            .transition(TransitionClass::new(
                "return",
                [1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] < 1.0 {
                        th[1]
                    } else {
                        0.0
                    }
                },
            ))
            .build()
            .unwrap()
    }

    /// A pure-death model that reaches an absorbing state.
    fn death_model() -> PopulationModel {
        let params = ParamSpace::single("rate", 1.0, 1.0).unwrap();
        PopulationModel::builder(1, params)
            .transition(TransitionClass::new(
                "die",
                [-1.0],
                |x: &StateVec, th: &[f64]| th[0] * x[0],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn simulation_respects_bounds_and_horizon() {
        let sim = Simulator::new(bike_model(), 50).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let run = sim
            .simulate(&[25], &mut policy, &SimulationOptions::new(20.0), 1)
            .unwrap();
        assert!(run.events() > 0);
        assert!((run.trajectory().last_time() - 20.0).abs() < 1e-12);
        for (_, state) in run.trajectory().iter() {
            assert!(state[0] >= 0.0 && state[0] <= 1.0);
        }
        assert!(*run.final_counts().iter().max().unwrap() <= 50);
    }

    #[test]
    fn absorbing_state_ends_simulation_early() {
        let sim = Simulator::new(death_model(), 20).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0]);
        let run = sim
            .simulate(&[20], &mut policy, &SimulationOptions::new(1_000.0), 3)
            .unwrap();
        assert_eq!(run.final_counts(), &[0]);
        assert!(run.events() == 20);
        assert!((run.trajectory().last_state()[0]).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = Simulator::new(bike_model(), 30).unwrap();
        let options = SimulationOptions::new(5.0);
        let mut p1 = ConstantPolicy::new(vec![1.5, 0.8]);
        let mut p2 = ConstantPolicy::new(vec![1.5, 0.8]);
        let a = sim.simulate(&[10], &mut p1, &options, 99).unwrap();
        let b = sim.simulate(&[10], &mut p2, &options, 99).unwrap();
        assert_eq!(a.final_counts(), b.final_counts());
        assert_eq!(a.events(), b.events());
    }

    #[test]
    fn strict_policy_rejects_out_of_range_values() {
        let sim = Simulator::new(bike_model(), 10).unwrap();
        let mut policy = ConstantPolicy::new(vec![10.0, 1.0]); // outside [0.5, 2]
        let err = sim
            .simulate(&[5], &mut policy, &SimulationOptions::new(1.0), 1)
            .unwrap_err();
        assert!(matches!(err, SimError::PolicyOutOfRange { .. }));
        // lenient mode clamps instead
        let run = sim
            .simulate(
                &[5],
                &mut policy,
                &SimulationOptions::new(1.0).lenient_policy(),
                1,
            )
            .unwrap();
        assert!(run.events() > 0);
    }

    #[test]
    fn input_validation() {
        let sim = Simulator::new(bike_model(), 10).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        assert!(sim
            .simulate(&[1, 2], &mut policy, &SimulationOptions::new(1.0), 1)
            .is_err());
        assert!(sim
            .simulate(&[-1], &mut policy, &SimulationOptions::new(1.0), 1)
            .is_err());
        assert!(Simulator::new(bike_model(), 0).is_err());
    }

    #[test]
    fn event_budget_truncates_gracefully_with_the_prefix_intact() {
        let sim = Simulator::new(bike_model(), 1000).unwrap();
        let mut policy = ConstantPolicy::new(vec![2.0, 2.0]);
        let options = SimulationOptions::new(100.0).max_events(50);
        let run = sim.simulate(&[500], &mut policy, &options, 5).unwrap();
        assert_eq!(run.events(), 50);
        let Outcome::Truncated { reason, reached_t } = run.outcome() else {
            panic!("budget-capped run completed");
        };
        assert_eq!(reason, TruncationReason::MaxEvents);
        assert!(reached_t > 0.0 && reached_t < 100.0);
        assert_eq!(run.trajectory().last_time(), reached_t);
        // The prefix is bit-identical to the uncapped run over [0, reached_t].
        let mut policy = ConstantPolicy::new(vec![2.0, 2.0]);
        let full = sim
            .simulate(&[500], &mut policy, &SimulationOptions::new(100.0), 5)
            .unwrap();
        assert!(!full.is_truncated());
        for ((ta, sa), (tb, sb)) in run.trajectory().iter().zip(full.trajectory().iter()) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(sa.as_slice(), sb.as_slice());
        }
    }

    #[test]
    fn budget_event_cap_combines_with_engine_cap() {
        let options = SimulationOptions::new(1.0)
            .max_events(100)
            .budget(mfu_guard::RunBudget::unlimited().max_events(7));
        assert_eq!(options.effective_max_events(), 7);
        let options = SimulationOptions::new(1.0).max_events(3);
        assert_eq!(options.effective_max_events(), 3);
    }

    #[test]
    fn wall_clock_budget_truncates_instead_of_hanging() {
        let sim = Simulator::new(bike_model(), 1000).unwrap();
        let mut policy = ConstantPolicy::new(vec![2.0, 2.0]);
        let options = SimulationOptions::new(1e9)
            .budget(mfu_guard::RunBudget::unlimited().wall_clock(std::time::Duration::ZERO));
        let run = sim.simulate(&[500], &mut policy, &options, 5).unwrap();
        assert_eq!(
            run.outcome().truncation(),
            Some(TruncationReason::WallClock)
        );
        assert!(run.counters().budget_checks > 0);
    }

    #[test]
    fn untripped_budget_is_bit_identical_to_no_budget() {
        let sim = Simulator::new(cycle_model(), 500).unwrap();
        let options = SimulationOptions::new(3.0);
        let guarded_options = options.budget(
            mfu_guard::RunBudget::unlimited()
                .wall_clock(std::time::Duration::from_secs(3600))
                .max_events(u64::MAX),
        );
        let mut policy = ConstantPolicy::new(vec![1.0]);
        let plain = sim
            .simulate(&[300, 100, 100], &mut policy, &options, 17)
            .unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0]);
        let guarded = sim
            .simulate(&[300, 100, 100], &mut policy, &guarded_options, 17)
            .unwrap();
        assert_eq!(plain.events(), guarded.events());
        assert_eq!(plain.final_counts(), guarded.final_counts());
        for ((ta, sa), (tb, sb)) in plain.trajectory().iter().zip(guarded.trajectory().iter()) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(sa.as_slice(), sb.as_slice());
        }
        assert!(guarded.counters().budget_checks > 0);
        assert_eq!(plain.counters().budget_checks, 0);
    }

    #[test]
    fn injected_nan_rate_surfaces_as_a_span_attributed_error() {
        let sim = Simulator::new(bike_model(), 1000).unwrap().with_fault_plan(
            mfu_guard::FaultPlan::new().inject(10, mfu_guard::FaultKind::NanRate { rule: 0 }),
        );
        let mut policy = ConstantPolicy::new(vec![2.0, 2.0]);
        let err = sim
            .simulate(&[500], &mut policy, &SimulationOptions::new(100.0), 5)
            .unwrap_err();
        let SimError::InvalidRate { rule, time, value } = err else {
            panic!("expected InvalidRate, got {err:?}");
        };
        assert_eq!(rule, "pickup");
        assert!(time > 0.0);
        assert!(value.is_nan());
    }

    #[test]
    fn record_stride_reduces_trajectory_size() {
        let sim = Simulator::new(bike_model(), 200).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let dense = sim
            .simulate(&[100], &mut policy, &SimulationOptions::new(5.0), 11)
            .unwrap();
        let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
        let sparse = sim
            .simulate(
                &[100],
                &mut policy,
                &SimulationOptions::new(5.0).record_stride(10),
                11,
            )
            .unwrap();
        assert!(sparse.trajectory().len() < dense.trajectory().len());
        assert_eq!(sparse.final_counts(), dense.final_counts());
    }

    #[test]
    fn feedback_policy_observes_the_simulated_state() {
        // A hysteresis policy on the bike model: pickups are fast while the
        // station is full, slow while it is empty — occupancy should hover
        // between the thresholds rather than drifting to a boundary.
        let sim = Simulator::new(bike_model(), 200).unwrap();
        let mut policy = HysteresisPolicy::new(vec![0.5, 1.0], 0, 0.5, 2.0, 0, 0.3, 0.7, true);
        let run = sim
            .simulate(&[100], &mut policy, &SimulationOptions::new(50.0), 17)
            .unwrap();
        let occupancy = run.trajectory().last_state()[0];
        assert!(
            occupancy > 0.05 && occupancy < 0.95,
            "occupancy {occupancy} drifted to a boundary"
        );
    }

    /// A cyclic 3-species migration model with annotated species supports,
    /// so the dependency graph is genuinely sparse.
    fn cycle_model() -> PopulationModel {
        let params = ParamSpace::new(vec![("rate", Interval::new(0.5, 2.0).unwrap())]).unwrap();
        PopulationModel::builder(3, params)
            .variable_names(vec!["A", "B", "C"])
            .transition(
                TransitionClass::new("ab", [-1.0, 1.0, 0.0], |x: &StateVec, th: &[f64]| {
                    th[0] * x[0]
                })
                .with_species_support(vec![0]),
            )
            .transition(
                TransitionClass::new("bc", [0.0, -1.0, 1.0], |x: &StateVec, _: &[f64]| 1.5 * x[1])
                    .with_species_support(vec![1]),
            )
            .transition(
                TransitionClass::new("ca", [1.0, 0.0, -1.0], |x: &StateVec, _: &[f64]| {
                    0.75 * x[2]
                })
                .with_species_support(vec![2]),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn dependency_graph_reflects_stoichiometry_and_support() {
        let sim = Simulator::new(cycle_model(), 100).unwrap();
        assert!(sim.has_sparse_dependencies());
        // firing `ab` changes A and B → re-evaluate `ab` (reads A) and `bc`
        // (reads B) but not `ca` (reads C only)
        assert_eq!(sim.dependency_graph()[0], vec![0, 1]);
        assert_eq!(sim.dependency_graph()[1], vec![1, 2]);
        assert_eq!(sim.dependency_graph()[2], vec![0, 2]);

        // unannotated closures degrade to conservative full lists
        let bike = Simulator::new(bike_model(), 100).unwrap();
        assert!(!bike.has_sparse_dependencies());
        assert_eq!(bike.dependency_graph()[0], vec![0, 1]);
    }

    #[test]
    fn propensity_strategies_agree_bit_for_bit() {
        let sim = Simulator::new(cycle_model(), 300).unwrap();
        let base = SimulationOptions::new(25.0);
        let run = |strategy: PropensityStrategy, seed: u64| {
            let mut policy = ConstantPolicy::new(vec![1.25]);
            sim.simulate(
                &[150, 100, 50],
                &mut policy,
                &base.propensity_strategy(strategy),
                seed,
            )
            .unwrap()
        };
        for seed in [1, 7, 42] {
            let reference = run(PropensityStrategy::FullRescan, seed);
            let graph = run(PropensityStrategy::DependencyGraph, seed);
            let incremental = run(
                PropensityStrategy::IncrementalTotal { refresh_every: 64 },
                seed,
            );
            assert_eq!(reference.events(), graph.events(), "seed {seed}");
            assert_eq!(reference.final_counts(), graph.final_counts());
            for ((ta, sa), (tb, sb)) in reference.trajectory().iter().zip(graph.trajectory().iter())
            {
                assert_eq!(ta.to_bits(), tb.to_bits(), "seed {seed}: time diverged");
                assert_eq!(sa.as_slice(), sb.as_slice(), "seed {seed}: state diverged");
            }
            assert_eq!(reference.events(), incremental.events(), "seed {seed}");
            assert_eq!(reference.final_counts(), incremental.final_counts());
        }
    }

    #[test]
    fn selection_strategies_agree_on_the_cycle_model() {
        let sim = Simulator::new(cycle_model(), 300).unwrap();
        let base = SimulationOptions::new(25.0);
        let run = |selection: SelectionStrategy, seed: u64| {
            let mut policy = ConstantPolicy::new(vec![1.25]);
            sim.simulate(
                &[150, 100, 50],
                &mut policy,
                &base.selection_strategy(selection),
                seed,
            )
            .unwrap()
        };
        for seed in [1, 7, 42] {
            // the tree consumes the same single uniform draw per event as
            // the scan; disagreement is confined to ulp-wide windows none
            // of these seeds hit, so the runs match exactly
            let linear = run(SelectionStrategy::LinearScan, seed);
            let tree = run(SelectionStrategy::SumTree, seed);
            assert_eq!(linear.events(), tree.events(), "seed {seed}");
            assert_eq!(linear.final_counts(), tree.final_counts(), "seed {seed}");
            // composition-rejection draws differently, so only determinism
            // and model invariants are checked per seed
            let cr1 = run(SelectionStrategy::CompositionRejection, seed);
            let cr2 = run(SelectionStrategy::CompositionRejection, seed);
            assert_eq!(cr1.events(), cr2.events(), "seed {seed}");
            assert_eq!(cr1.final_counts(), cr2.final_counts(), "seed {seed}");
            assert!(cr1.events() > 0);
            assert_eq!(cr1.final_counts().iter().sum::<i64>(), 300, "conservation");
            assert!(cr1.final_counts().iter().all(|&c| c >= 0));
        }
    }

    #[test]
    fn constant_policy_short_circuit_matches_per_event_queries() {
        // `is_constant` lets the simulator query the policy once; the run
        // must be bit-identical to a policy returning the same constant
        // without the promise (queried every event, consuming no RNG).
        let sim = Simulator::new(cycle_model(), 200).unwrap();
        let options = SimulationOptions::new(15.0);
        let mut constant = ConstantPolicy::new(vec![1.5]);
        assert!(constant.is_constant());
        let mut queried = crate::policy::TimeFunctionPolicy::new("const", |_| vec![1.5]);
        assert!(!queried.is_constant());
        let a = sim
            .simulate(&[100, 60, 40], &mut constant, &options, 31)
            .unwrap();
        let b = sim
            .simulate(&[100, 60, 40], &mut queried, &options, 31)
            .unwrap();
        assert_eq!(a.events(), b.events());
        assert_eq!(a.final_counts(), b.final_counts());
        for ((ta, sa), (tb, sb)) in a.trajectory().iter().zip(b.trajectory().iter()) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(sa.as_slice(), sb.as_slice());
        }
    }

    #[test]
    fn strategies_agree_under_state_feedback_policies() {
        // A hysteresis policy moves ϑ mid-run, exercising the
        // theta-changed full-rescan branch of the dependency path.
        let sim = Simulator::new(bike_model(), 150).unwrap();
        let options = SimulationOptions::new(20.0);
        let run = |strategy: PropensityStrategy| {
            let mut policy = HysteresisPolicy::new(vec![0.5, 1.0], 0, 0.5, 2.0, 0, 0.3, 0.7, true);
            sim.simulate(
                &[75],
                &mut policy,
                &options.propensity_strategy(strategy),
                23,
            )
            .unwrap()
        };
        let reference = run(PropensityStrategy::FullRescan);
        let graph = run(PropensityStrategy::DependencyGraph);
        assert_eq!(reference.events(), graph.events());
        assert_eq!(reference.final_counts(), graph.final_counts());
    }

    /// A model built to wreck the `IncrementalTotal` running total: a rate
    /// that spikes between ~4e15 and 0 makes `total += delta` cancel
    /// catastrophically. While the total is huge its representable grid is
    /// 0.5 wide, so the arm rate 0.6 is recorded as 0.5 on the way up and
    /// the small remainder 0.4 as 0.5 on the way back — after each spike
    /// the running total sits ~0.1 *above* the true rate sum, putting ~10%
    /// of roulette targets beyond every positive rate. The last transition
    /// ("impossible") always has rate exactly 0.0 and bumps a witness
    /// species nothing else touches.
    fn drifting_total_model() -> PopulationModel {
        let params = ParamSpace::single("unused", 1.0, 1.0).unwrap();
        PopulationModel::builder(3, params)
            .variable_names(vec!["X", "Y", "Z"])
            .transition(TransitionClass::new(
                "arm",
                [1.0, 0.0, 0.0],
                |x: &StateVec, _: &[f64]| if x[0] < 0.5 { 0.6 } else { 0.0 },
            ))
            .transition(TransitionClass::new(
                "spike",
                [-1.0, 0.0, 0.0],
                |x: &StateVec, _: &[f64]| if x[0] > 0.5 { 3.7e15 } else { 0.0 },
            ))
            .transition(TransitionClass::new(
                "cycle_up",
                [0.0, 1.0, 0.0],
                |x: &StateVec, _: &[f64]| if x[1] < 0.5 { 0.3 } else { 0.0 },
            ))
            .transition(TransitionClass::new(
                "cycle_down",
                [0.0, -1.0, 0.0],
                |x: &StateVec, _: &[f64]| if x[1] > 0.5 { 0.7 } else { 0.0 },
            ))
            .transition(TransitionClass::new(
                "impossible",
                [0.0, 0.0, 1.0],
                |_: &StateVec, _: &[f64]| 0.0,
            ))
            .build()
            .unwrap()
    }

    /// Regression for the zero-rate selection fallthrough: when the drifted
    /// incremental total exceeds the true rate sum, the roulette target can
    /// overshoot every positive rate; the selection must then fall back to
    /// the last *positive-rate* transition instead of firing the final
    /// array entry (here a rate-0.0 "impossible" transition that would bump
    /// the witness species Z).
    #[test]
    fn drifted_incremental_total_never_fires_a_zero_rate_transition() {
        let sim = Simulator::new(drifting_total_model(), 1).unwrap();
        // record_stride: spike-phase waiting times (total ~ 4e15) round
        // below one ulp of t, so per-event recording would collide with the
        // trajectory's strictly-increasing time guard
        let options = SimulationOptions::new(400.0)
            .record_stride(1 << 30)
            .propensity_strategy(PropensityStrategy::IncrementalTotal {
                refresh_every: usize::MAX,
            });
        for seed in 0..20 {
            let mut policy = ConstantPolicy::new(vec![1.0]);
            let run = sim
                .simulate(&[0, 0, 0], &mut policy, &options, seed)
                .unwrap();
            assert_eq!(
                run.final_counts()[2],
                0,
                "seed {seed}: impossible (rate 0.0) transition fired {} times",
                run.final_counts()[2]
            );
        }
    }

    #[test]
    fn run_counters_track_engine_internals() {
        let sim = Simulator::new(cycle_model(), 300).unwrap();
        let base = SimulationOptions::new(25.0);
        let run = |strategy: PropensityStrategy| {
            let mut policy = ConstantPolicy::new(vec![1.25]);
            sim.simulate(
                &[150, 100, 50],
                &mut policy,
                &base.propensity_strategy(strategy),
                7,
            )
            .unwrap()
        };
        let full = run(PropensityStrategy::FullRescan);
        let f = full.counters();
        assert_eq!(f.events_fired, full.events() as u64);
        // every loop iteration (events + the final break check) rescans
        // all three rates
        assert_eq!(f.propensity_evals, (full.events() as u64 + 1) * 3);
        assert_eq!(f.propensity_skips, 0);
        assert_eq!(f.selection_rejections, 0, "linear scan never rejects");
        assert_eq!(f.tau_leap_steps, 0, "exact run took tau-leap steps");

        let graph = run(PropensityStrategy::DependencyGraph);
        let g = graph.counters();
        assert_eq!(g.events_fired, f.events_fired);
        assert!(
            g.propensity_evals < f.propensity_evals,
            "graph never skipped"
        );
        assert!(g.propensity_skips > 0);
        // the cycle model's rates vanish exactly on the boundary, so no
        // jump is ever dropped and the two strategies see the same number
        // of maintenance rounds
        assert_eq!(g.propensity_evals + g.propensity_skips, f.propensity_evals);
    }

    #[test]
    fn runs_report_their_resolved_strategies() {
        let sim = Simulator::new(cycle_model(), 300).unwrap();
        let mut policy = ConstantPolicy::new(vec![1.25]);
        let run = sim
            .simulate(
                &[150, 100, 50],
                &mut policy,
                &SimulationOptions::new(5.0),
                1,
            )
            .unwrap();
        // 3 transitions: Auto resolves to the linear scan
        assert_eq!(run.resolved_selection(), SelectionStrategy::LinearScan);
        assert_eq!(
            run.resolved_propensity(),
            PropensityStrategy::DependencyGraph
        );
    }

    #[test]
    fn metrics_flush_matches_run_counters_and_leaves_run_bit_identical() {
        use mfu_obs::Counter;

        let plain = Simulator::new(cycle_model(), 300).unwrap();
        let observed = plain.clone().with_obs(Obs::with_metrics());
        let options = SimulationOptions::new(15.0);
        let run_with = |sim: &Simulator| {
            let mut policy = ConstantPolicy::new(vec![1.25]);
            sim.simulate(&[150, 100, 50], &mut policy, &options, 13)
                .unwrap()
        };
        let a = run_with(&plain);
        let b = run_with(&observed);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.final_counts(), b.final_counts());
        for ((ta, sa), (tb, sb)) in a.trajectory().iter().zip(b.trajectory().iter()) {
            assert_eq!(ta.to_bits(), tb.to_bits());
            assert_eq!(sa.as_slice(), sb.as_slice());
        }
        assert_eq!(a.counters(), b.counters());
        let snap = observed.obs().metrics.snapshot().unwrap();
        assert_eq!(
            snap.counter(Counter::SimEventsFired),
            b.counters().events_fired
        );
        assert_eq!(
            snap.counter(Counter::SimPropensityEvals),
            b.counters().propensity_evals
        );
        assert_eq!(snap.counter(Counter::SimRuns), 1);
    }

    #[test]
    fn mean_of_many_runs_tracks_mean_field() {
        // For the symmetric bike model the mean-field fixed point is 0.5; the
        // empirical mean over replications at moderate N should be close.
        let sim = Simulator::new(bike_model(), 100).unwrap();
        let options = SimulationOptions::new(30.0).record_stride(64);
        let mut sum = 0.0;
        let replications = 20;
        for seed in 0..replications {
            let mut policy = ConstantPolicy::new(vec![1.0, 1.0]);
            let run = sim.simulate(&[100], &mut policy, &options, seed).unwrap();
            sum += run.trajectory().last_state()[0];
        }
        let mean = sum / replications as f64;
        assert!(
            (mean - 0.5).abs() < 0.15,
            "empirical mean {mean} far from mean field 0.5"
        );
    }
}
