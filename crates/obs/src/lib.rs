//! `mfu-obs`: observability primitives for the rest of the workspace.
//!
//! Two independent instruments share one design rule — **disabled must be
//! free**:
//!
//! * [`Metrics`] — a handle over a fixed set of atomic [`Counter`]s,
//!   accumulated [`Timer`]s, [`Gauge`]s and string labels. The handle is a
//!   plain `Option<Arc<..>>`: a disabled handle is `None`, every recording
//!   method starts with an `is_none` early-out, and nothing is allocated.
//!   Hot engine loops do not call into `Metrics` at all — they accumulate
//!   plain-`u64` run-local counter structs unconditionally (register
//!   arithmetic, essentially free) and *flush* once per run when a handle
//!   is enabled. Trajectories are bit-identical with metrics on or off
//!   because the instrumented code never branches on the handle inside
//!   numerical paths.
//! * [`Tracer`] — a structured event sink writing one JSON object per line
//!   (JSONL) to any `Write + Send` sink. Engines emit coarse events (run
//!   summaries, τ-halvings, restart winners), never per-jump records.
//!   [`Tracer::span`] times a region and emits a `span` event on close.
//!
//! [`Obs`] bundles the two; engines take an `Obs` via `with_obs` builders
//! and default to [`Obs::none`].
//!
//! ```
//! use mfu_obs::{Counter, Obs};
//!
//! let obs = Obs::with_metrics();
//! obs.metrics.add(Counter::SimEventsFired, 42);
//! let snapshot = obs.metrics.snapshot().expect("metrics enabled");
//! assert_eq!(snapshot.counter(Counter::SimEventsFired), 42);
//! assert!(snapshot.render_json().contains("\"sim_events_fired\":42"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Metrics, MetricsSnapshot, Timer};
pub use trace::{BufferSink, Field, Span, Tracer};

/// Bundle of the two observability instruments.
///
/// Cloning is cheap (two `Option<Arc>` copies) and clones share the same
/// underlying recorders, so an `Obs` can be handed to scoped worker
/// threads and every flush lands in one place.
#[derive(Clone, Debug, Default)]
pub struct Obs {
    /// Counter/timer/label recorder (disabled by default).
    pub metrics: Metrics,
    /// Structured JSONL event sink (disabled by default).
    pub tracer: Tracer,
}

impl Obs {
    /// A fully disabled bundle: every recording call is a no-op.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A bundle with metrics enabled and tracing disabled.
    #[must_use]
    pub fn with_metrics() -> Self {
        Self {
            metrics: Metrics::enabled(),
            tracer: Tracer::disabled(),
        }
    }

    /// True when at least one instrument records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.metrics.is_enabled() || self.tracer.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_is_inert() {
        let obs = Obs::none();
        assert!(!obs.is_enabled());
        obs.metrics.add(Counter::SimEventsFired, 7);
        obs.tracer.event("noop", &[]);
        assert!(obs.metrics.snapshot().is_none());
    }

    #[test]
    fn clones_share_the_recorder() {
        let obs = Obs::with_metrics();
        let clone = obs.clone();
        clone.metrics.add(Counter::CoreRk4Steps, 3);
        obs.metrics.add(Counter::CoreRk4Steps, 2);
        let snap = obs.metrics.snapshot().unwrap();
        assert_eq!(snap.counter(Counter::CoreRk4Steps), 5);
    }
}
