//! Structured run tracing: one JSON object per line.
//!
//! Every record carries the event name under `"ev"` and nanoseconds since
//! the tracer was created under `"t_ns"`, followed by the caller's fields:
//!
//! ```text
//! {"ev":"tau_halved","t_ns":18234,"t":0.41,"tau":0.0125}
//! {"ev":"span","t_ns":90114,"name":"lang.parse","elapsed_ns":71880}
//! ```
//!
//! Serialization is hand-rolled (the vendored `serde` is a stub): strings
//! are escaped per JSON, non-finite floats render as `null`. Write errors
//! are swallowed — tracing must never fail the run it observes.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A field value attached to a trace event.
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point; non-finite values render as `null`.
    F64(f64),
    /// String (JSON-escaped on write).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

struct TracerCore {
    sink: Mutex<Box<dyn std::io::Write + Send>>,
    epoch: Instant,
}

impl std::fmt::Debug for TracerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerCore").finish_non_exhaustive()
    }
}

/// Shared handle over a JSONL event sink; `Default` is disabled.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    core: Option<Arc<TracerCore>>,
}

impl Tracer {
    /// A handle that drops every event (same as `Default`).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A handle writing JSONL records to `sink`.
    ///
    /// Wrap files in a `BufWriter` — the tracer locks and writes per
    /// event, it does not buffer.
    #[must_use]
    pub fn to_writer(sink: Box<dyn std::io::Write + Send>) -> Self {
        Self {
            core: Some(Arc::new(TracerCore {
                sink: Mutex::new(sink),
                epoch: Instant::now(),
            })),
        }
    }

    /// A handle writing into a shared in-memory buffer (tests, snapshot
    /// assertions). Returns the tracer and the buffer it fills.
    #[must_use]
    pub fn to_buffer() -> (Self, BufferSink) {
        let buffer = BufferSink::default();
        (Self::to_writer(Box::new(buffer.clone())), buffer)
    }

    /// True when this handle writes.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Emits one event record. No-op when disabled.
    pub fn event(&self, name: &str, fields: &[(&str, Field<'_>)]) {
        let Some(core) = &self.core else { return };
        let t_ns = u64::try_from(core.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut line = String::with_capacity(64);
        line.push_str("{\"ev\":\"");
        line.push_str(&escape_json(name));
        line.push_str("\",\"t_ns\":");
        line.push_str(&t_ns.to_string());
        for (key, value) in fields {
            line.push_str(",\"");
            line.push_str(&escape_json(key));
            line.push_str("\":");
            write_field(&mut line, value);
        }
        line.push_str("}\n");
        if let Ok(mut sink) = core.sink.lock() {
            let _ = sink.write_all(line.as_bytes());
        }
    }

    /// Starts a timed region; the returned guard emits a `span` event
    /// with the region's `name` and `elapsed_ns` when dropped or
    /// [finished](Span::finish).
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            tracer: self.clone(),
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Flushes the underlying writer. No-op when disabled.
    pub fn flush(&self) {
        if let Some(core) = &self.core {
            if let Ok(mut sink) = core.sink.lock() {
                let _ = sink.flush();
            }
        }
    }
}

/// Guard for a timed region; see [`Tracer::span`].
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl Span {
    /// Ends the span now, attaching `fields` to the emitted record.
    pub fn finish(mut self, fields: &[(&str, Field<'_>)]) {
        self.emit(fields);
    }

    fn emit(&mut self, extra: &[(&str, Field<'_>)]) {
        if self.done {
            return;
        }
        self.done = true;
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut fields: Vec<(&str, Field<'_>)> = Vec::with_capacity(extra.len() + 2);
        fields.push(("name", Field::Str(self.name)));
        fields.push(("elapsed_ns", Field::U64(elapsed)));
        fields.extend_from_slice(extra);
        self.tracer.event("span", &fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit(&[]);
    }
}

/// A cloneable `Write` over a shared `Vec<u8>`; pairs with
/// [`Tracer::to_buffer`].
#[derive(Clone, Debug, Default)]
pub struct BufferSink {
    buffer: Arc<Mutex<Vec<u8>>>,
}

impl BufferSink {
    /// Copies the bytes written so far out as a string (lossy on
    /// non-UTF-8, which the tracer never writes).
    #[must_use]
    pub fn contents(&self) -> String {
        self.buffer
            .lock()
            .map(|b| String::from_utf8_lossy(&b).into_owned())
            .unwrap_or_default()
    }
}

impl std::io::Write for BufferSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if let Ok(mut inner) = self.buffer.lock() {
            inner.extend_from_slice(buf);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn write_field(out: &mut String, field: &Field<'_>) {
    use std::fmt::Write as _;
    match field {
        Field::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Field::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Field::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Field::F64(_) => out.push_str("null"),
        Field::Str(s) => {
            out.push('"');
            out.push_str(&escape_json(s));
            out.push('"');
        }
        Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
    }
}

/// Escapes a string for embedding inside a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_drops_events() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.event("anything", &[("k", Field::U64(1))]);
        tracer.flush();
    }

    #[test]
    fn events_render_one_json_object_per_line() {
        let (tracer, buffer) = Tracer::to_buffer();
        tracer.event(
            "run_start",
            &[
                ("target", Field::Str("sir")),
                ("scale", Field::F64(100.0)),
                ("exact", Field::Bool(true)),
                ("delta", Field::I64(-3)),
            ],
        );
        tracer.event("nan_guard", &[("x", Field::F64(f64::NAN))]);
        let lines: Vec<String> = buffer.contents().lines().map(String::from).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"run_start\",\"t_ns\":"));
        assert!(lines[0].contains("\"target\":\"sir\""));
        assert!(lines[0].contains("\"scale\":100"));
        assert!(lines[0].contains("\"exact\":true"));
        assert!(lines[0].contains("\"delta\":-3"));
        assert!(lines[1].contains("\"x\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let (tracer, buffer) = Tracer::to_buffer();
        tracer.event("e", &[("msg", Field::Str("a\"b\\c\nd"))]);
        assert!(buffer.contents().contains("\"msg\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn spans_emit_elapsed_on_drop_and_finish() {
        let (tracer, buffer) = Tracer::to_buffer();
        drop(tracer.span("dropped"));
        tracer.span("finished").finish(&[("rules", Field::U64(4))]);
        let contents = buffer.contents();
        assert_eq!(contents.lines().count(), 2);
        assert!(contents.contains("\"name\":\"dropped\""));
        assert!(contents.contains("\"name\":\"finished\""));
        assert!(contents.contains("\"elapsed_ns\":"));
        assert!(contents.contains("\"rules\":4"));
    }
}
