//! Atomic counters, accumulated timers, gauges and labels.
//!
//! The recorder is a fixed-shape table: every [`Counter`], [`Timer`] and
//! [`Gauge`] is an enum variant indexing into a preallocated array of
//! relaxed `AtomicU64`s, so recording never allocates and never takes a
//! lock (labels, which are cold, sit behind a `Mutex`). A disabled
//! [`Metrics`] is a `None` handle; every method early-outs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Monotonic event counters recorded by the engines.
///
/// Names are grouped by crate: `Sim*` from `mfu-sim`, `Core*` from
/// `mfu-core`, `Lang*` from `mfu-lang`, `Serve*` from `mfu-serve`. The
/// snapshot renders each as the snake-case of its variant name (e.g.
/// `sim_events_fired`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Transition firings recorded by a simulation run (exact jumps, or
    /// τ-leap steps plus fallback SSA steps).
    SimEventsFired,
    /// Individual rate evaluations performed by the exact SSA engine.
    SimPropensityEvals,
    /// Rate evaluations *avoided* by the dependency-graph maintenance
    /// strategy (transitions left untouched after a firing).
    SimPropensitySkips,
    /// Rejected candidate draws inside composition–rejection selection.
    SimSelectionRejections,
    /// Accepted τ-leap steps.
    SimTauLeapSteps,
    /// τ-halvings forced by the negative-population guard.
    SimTauHalvings,
    /// Exact-SSA fallback bursts entered when total propensity is small.
    SimTauFallbackBursts,
    /// Individual exact-SSA steps taken inside fallback bursts.
    SimTauFallbackSteps,
    /// Poisson firing-count draws made by the τ-leap engine.
    SimPoissonDraws,
    /// Genuine (non-amortised) wall-clock reads made by budget trackers.
    SimBudgetChecks,
    /// τ-leap runs demoted to exact SSA after repeated halvings.
    SimTauDemotions,
    /// Completed simulation runs flushed into this recorder.
    SimRuns,
    /// RK4 integration steps taken by the Pontryagin solver.
    CoreRk4Steps,
    /// Finite-difference Jacobian evaluations in the backward sweep.
    CoreJacobianEvals,
    /// Forward–backward Pontryagin sweep iterations.
    CorePontryaginSweeps,
    /// Pontryagin multi-start restarts launched.
    CorePontryaginRestarts,
    /// Single-start Pontryagin solves escalated to multi-start after a
    /// suspicious-convergence probe.
    CorePontryaginEscalations,
    /// Drift evaluations at hull box corners/midpoints.
    CoreHullVertexEvals,
    /// DSL rules lowered to rate programs under observation.
    LangRulesLowered,
    /// Bound-artifact cache hits served by `mfu-serve`.
    ServeArtifactHits,
    /// Bound-artifact cache misses (each one ran a bounding engine cold).
    ServeArtifactMisses,
    /// Bound artifacts evicted from the serve cache by the LRU bound.
    ServeArtifactEvictions,
    /// Compiled-model interner hits inside the query service.
    ServeModelHits,
    /// Compiled-model interner misses (each one compiled a model).
    ServeModelMisses,
}

impl Counter {
    /// Every counter, in snapshot rendering order.
    pub const ALL: [Counter; 24] = [
        Counter::SimEventsFired,
        Counter::SimPropensityEvals,
        Counter::SimPropensitySkips,
        Counter::SimSelectionRejections,
        Counter::SimTauLeapSteps,
        Counter::SimTauHalvings,
        Counter::SimTauFallbackBursts,
        Counter::SimTauFallbackSteps,
        Counter::SimPoissonDraws,
        Counter::SimBudgetChecks,
        Counter::SimTauDemotions,
        Counter::SimRuns,
        Counter::CoreRk4Steps,
        Counter::CoreJacobianEvals,
        Counter::CorePontryaginSweeps,
        Counter::CorePontryaginRestarts,
        Counter::CorePontryaginEscalations,
        Counter::CoreHullVertexEvals,
        Counter::LangRulesLowered,
        Counter::ServeArtifactHits,
        Counter::ServeArtifactMisses,
        Counter::ServeArtifactEvictions,
        Counter::ServeModelHits,
        Counter::ServeModelMisses,
    ];

    /// Snake-case snapshot name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Counter::SimEventsFired => "sim_events_fired",
            Counter::SimPropensityEvals => "sim_propensity_evals",
            Counter::SimPropensitySkips => "sim_propensity_skips",
            Counter::SimSelectionRejections => "sim_selection_rejections",
            Counter::SimTauLeapSteps => "sim_tau_leap_steps",
            Counter::SimTauHalvings => "sim_tau_halvings",
            Counter::SimTauFallbackBursts => "sim_tau_fallback_bursts",
            Counter::SimTauFallbackSteps => "sim_tau_fallback_steps",
            Counter::SimPoissonDraws => "sim_poisson_draws",
            Counter::SimBudgetChecks => "sim_budget_checks",
            Counter::SimTauDemotions => "sim_tau_demotions",
            Counter::SimRuns => "sim_runs",
            Counter::CoreRk4Steps => "core_rk4_steps",
            Counter::CoreJacobianEvals => "core_jacobian_evals",
            Counter::CorePontryaginSweeps => "core_pontryagin_sweeps",
            Counter::CorePontryaginRestarts => "core_pontryagin_restarts",
            Counter::CorePontryaginEscalations => "core_pontryagin_escalations",
            Counter::CoreHullVertexEvals => "core_hull_vertex_evals",
            Counter::LangRulesLowered => "lang_rules_lowered",
            Counter::ServeArtifactHits => "serve_artifact_hits",
            Counter::ServeArtifactMisses => "serve_artifact_misses",
            Counter::ServeArtifactEvictions => "serve_artifact_evictions",
            Counter::ServeModelHits => "serve_model_hits",
            Counter::ServeModelMisses => "serve_model_misses",
        }
    }
}

/// Accumulated wall-clock timers (total nanoseconds per region).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Timer {
    /// DSL source → AST.
    LangParse,
    /// AST → resolved model (name resolution, typing).
    LangValidate,
    /// Resolved rates → `RateProgram` bytecode.
    LangLower,
    /// Stochastic simulation (exact or τ-leap), per CLI run.
    SimSimulate,
    /// Mean-field bound computation (Pontryagin or hull), per CLI run.
    CoreBound,
}

impl Timer {
    /// Every timer, in snapshot rendering order.
    pub const ALL: [Timer; 5] = [
        Timer::LangParse,
        Timer::LangValidate,
        Timer::LangLower,
        Timer::SimSimulate,
        Timer::CoreBound,
    ];

    /// Snake-case snapshot name (without the `_ns` suffix the renderers
    /// append).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Timer::LangParse => "lang_parse",
            Timer::LangValidate => "lang_validate",
            Timer::LangLower => "lang_lower",
            Timer::SimSimulate => "sim_simulate",
            Timer::CoreBound => "core_bound",
        }
    }
}

/// Last-write-wins instantaneous values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Index of the Pontryagin multi-start initialization that produced
    /// the winning extremal (0 = midpoint start).
    CorePontryaginWinningRestart,
}

impl Gauge {
    /// Every gauge, in snapshot rendering order.
    pub const ALL: [Gauge; 1] = [Gauge::CorePontryaginWinningRestart];

    /// Snake-case snapshot name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Gauge::CorePontryaginWinningRestart => "core_pontryagin_winning_restart",
        }
    }
}

/// Sentinel stored in gauge slots that were never set.
const GAUGE_UNSET: u64 = u64::MAX;

#[derive(Debug)]
struct MetricsCore {
    counters: [AtomicU64; Counter::ALL.len()],
    timers_ns: [AtomicU64; Timer::ALL.len()],
    gauges: [AtomicU64; Gauge::ALL.len()],
    labels: Mutex<BTreeMap<&'static str, String>>,
}

impl MetricsCore {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            timers_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(GAUGE_UNSET)),
            labels: Mutex::new(BTreeMap::new()),
        }
    }
}

/// Shared handle over a metrics recorder; `Default` is disabled.
///
/// All mutation uses relaxed atomics — counters are statistics, not
/// synchronization. Clones share the recorder.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    core: Option<Arc<MetricsCore>>,
}

impl Metrics {
    /// A handle that records.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            core: Some(Arc::new(MetricsCore::new())),
        }
    }

    /// A handle that drops everything (same as `Default`).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// True when this handle records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, delta: u64) {
        if let Some(core) = &self.core {
            core.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Adds elapsed nanoseconds to a timer.
    #[inline]
    pub fn add_timer_ns(&self, timer: Timer, ns: u64) {
        if let Some(core) = &self.core {
            core.timers_ns[timer as usize].fetch_add(ns, Ordering::Relaxed);
        }
    }

    /// Runs `f`, charging its wall-clock time to `timer` when enabled.
    ///
    /// Disabled handles call `f` directly without reading the clock.
    #[inline]
    pub fn time<T>(&self, timer: Timer, f: impl FnOnce() -> T) -> T {
        match &self.core {
            None => f(),
            Some(core) => {
                let start = Instant::now();
                let out = f();
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                core.timers_ns[timer as usize].fetch_add(ns, Ordering::Relaxed);
                out
            }
        }
    }

    /// Sets a gauge (last write wins).
    #[inline]
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        if let Some(core) = &self.core {
            core.gauges[gauge as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Sets a string label (last write wins).
    pub fn set_label(&self, key: &'static str, value: impl Into<String>) {
        if let Some(core) = &self.core {
            if let Ok(mut labels) = core.labels.lock() {
                labels.insert(key, value.into());
            }
        }
    }

    /// Copies the current values out, or `None` when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let core = self.core.as_ref()?;
        Some(MetricsSnapshot {
            counters: std::array::from_fn(|i| core.counters[i].load(Ordering::Relaxed)),
            timers_ns: std::array::from_fn(|i| core.timers_ns[i].load(Ordering::Relaxed)),
            gauges: std::array::from_fn(|i| core.gauges[i].load(Ordering::Relaxed)),
            labels: core
                .labels
                .lock()
                .map(|l| {
                    l.iter()
                        .map(|(k, v)| ((*k).to_string(), v.clone()))
                        .collect()
                })
                .unwrap_or_default(),
        })
    }
}

/// A point-in-time copy of every metric, ready to render.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::ALL.len()],
    timers_ns: [u64; Timer::ALL.len()],
    gauges: [u64; Gauge::ALL.len()],
    labels: Vec<(String, String)>,
}

impl MetricsSnapshot {
    /// Value of one counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Accumulated nanoseconds of one timer.
    #[must_use]
    pub fn timer_ns(&self, timer: Timer) -> u64 {
        self.timers_ns[timer as usize]
    }

    /// Value of one gauge, `None` when never set.
    #[must_use]
    pub fn gauge(&self, gauge: Gauge) -> Option<u64> {
        let raw = self.gauges[gauge as usize];
        (raw != GAUGE_UNSET).then_some(raw)
    }

    /// Label value by key, `None` when never set.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Human-readable multi-line table. Zero-valued counters and timers
    /// are omitted; labels and set gauges always print.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::from("metrics snapshot\n");
        for (key, value) in &self.labels {
            let _ = writeln!(out, "  {key:<32} {value}");
        }
        for counter in Counter::ALL {
            let v = self.counter(counter);
            if v != 0 {
                let _ = writeln!(out, "  {:<32} {v}", counter.name());
            }
        }
        for gauge in Gauge::ALL {
            if let Some(v) = self.gauge(gauge) {
                let _ = writeln!(out, "  {:<32} {v}", gauge.name());
            }
        }
        for timer in Timer::ALL {
            let ns = self.timer_ns(timer);
            if ns != 0 {
                let _ = writeln!(
                    out,
                    "  {:<32} {:.3} ms",
                    format!("{}_ms", timer.name()),
                    ns as f64 / 1.0e6
                );
            }
        }
        out
    }

    /// Single-line JSON object with `counters`, `timers_ns`, `gauges` and
    /// `labels` sections. All counters and timers are emitted (including
    /// zeros) so the schema is stable for machine consumers.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, counter) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", counter.name(), self.counter(*counter));
        }
        out.push_str("},\"timers_ns\":{");
        for (i, timer) in Timer::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}_ns\":{}", timer.name(), self.timer_ns(*timer));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for gauge in Gauge::ALL {
            if let Some(v) = self.gauge(gauge) {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\"{}\":{v}", gauge.name());
            }
        }
        out.push_str("},\"labels\":{");
        for (i, (key, value)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":\"{}\"",
                crate::trace::escape_json(key),
                crate::trace::escape_json(value)
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let metrics = Metrics::disabled();
        metrics.add(Counter::SimEventsFired, 10);
        metrics.add_timer_ns(Timer::SimSimulate, 10);
        metrics.set_gauge(Gauge::CorePontryaginWinningRestart, 1);
        metrics.set_label("algorithm", "exact");
        assert!(metrics.snapshot().is_none());
        // time() still runs the closure.
        assert_eq!(metrics.time(Timer::SimSimulate, || 5), 5);
    }

    #[test]
    fn counters_timers_gauges_labels_round_trip() {
        let metrics = Metrics::enabled();
        metrics.add(Counter::SimEventsFired, 3);
        metrics.add(Counter::SimEventsFired, 4);
        metrics.add_timer_ns(Timer::LangParse, 1_500);
        metrics.set_gauge(Gauge::CorePontryaginWinningRestart, 2);
        metrics.set_label("selection", "sum-tree");
        let snap = metrics.snapshot().unwrap();
        assert_eq!(snap.counter(Counter::SimEventsFired), 7);
        assert_eq!(snap.timer_ns(Timer::LangParse), 1_500);
        assert_eq!(snap.gauge(Gauge::CorePontryaginWinningRestart), Some(2));
        assert_eq!(snap.label("selection"), Some("sum-tree"));
        assert_eq!(snap.label("missing"), None);
    }

    #[test]
    fn unset_gauge_reads_none() {
        let snap = Metrics::enabled().snapshot().unwrap();
        assert_eq!(snap.gauge(Gauge::CorePontryaginWinningRestart), None);
    }

    #[test]
    fn json_rendering_is_stable_and_complete() {
        let metrics = Metrics::enabled();
        metrics.add(Counter::SimTauHalvings, 2);
        metrics.set_label("algorithm", "tau-leap");
        let json = metrics.snapshot().unwrap().render_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"sim_tau_halvings\":2"));
        // zero counters are still present for schema stability
        assert!(json.contains("\"core_rk4_steps\":0"));
        assert!(json.contains("\"sim_simulate_ns\":0"));
        assert!(json.contains("\"algorithm\":\"tau-leap\""));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn pretty_rendering_elides_zeros() {
        let metrics = Metrics::enabled();
        metrics.add(Counter::SimEventsFired, 9);
        let pretty = metrics.snapshot().unwrap().render_pretty();
        assert!(pretty.contains("sim_events_fired"));
        assert!(!pretty.contains("core_rk4_steps"));
    }

    #[test]
    fn shared_across_threads() {
        let metrics = Metrics::enabled();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = metrics.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        m.add(Counter::CoreRk4Steps, 1);
                    }
                });
            }
        });
        assert_eq!(
            metrics.snapshot().unwrap().counter(Counter::CoreRk4Steps),
            4000
        );
    }
}
