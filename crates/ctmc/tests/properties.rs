//! Property-based tests for the CTMC and population-process layer.

use mfu_ctmc::finite::{ExpansionOptions, FiniteChain};
use mfu_ctmc::generator::GeneratorMatrix;
use mfu_ctmc::imprecise::IntervalGenerator;
use mfu_ctmc::params::{Interval, ParamSpace};
use mfu_ctmc::population::PopulationModel;
use mfu_ctmc::transition::TransitionClass;
use mfu_num::StateVec;
use proptest::prelude::*;

/// A random birth–death generator on `n` states.
fn birth_death(n: usize, up: &[f64], down: &[f64]) -> GeneratorMatrix {
    let mut q = GeneratorMatrix::new(n);
    for i in 0..n - 1 {
        q.set_rate(i, i + 1, up[i]).unwrap();
        q.set_rate(i + 1, i, down[i]).unwrap();
    }
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rows of a generator always sum to zero, whatever rates are set.
    #[test]
    fn generator_rows_sum_to_zero(up in prop::collection::vec(0.01..5.0f64, 4), down in prop::collection::vec(0.01..5.0f64, 4)) {
        let q = birth_death(5, &up, &down);
        for i in 0..5 {
            let row_sum: f64 = (0..5).map(|j| q.rate(i, j)).sum();
            prop_assert!(row_sum.abs() < 1e-12);
        }
    }

    /// Uniformization preserves probability mass and non-negativity at any horizon.
    #[test]
    fn transient_distribution_is_a_distribution(
        up in prop::collection::vec(0.01..5.0f64, 4),
        down in prop::collection::vec(0.01..5.0f64, 4),
        t in 0.0..20.0f64,
    ) {
        let q = birth_death(5, &up, &down);
        let p = q.transient_distribution(&[1.0, 0.0, 0.0, 0.0, 0.0], t, 1e-10).unwrap();
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(p.iter().all(|&v| v >= -1e-12));
    }

    /// The stationary distribution is (numerically) invariant under a further
    /// transient step.
    #[test]
    fn stationary_distribution_is_invariant(
        up in prop::collection::vec(0.05..3.0f64, 3),
        down in prop::collection::vec(0.05..3.0f64, 3),
    ) {
        let q = birth_death(4, &up, &down);
        let pi = q.stationary_distribution(1e-12, 2_000_000).unwrap();
        let after = q.transient_distribution(&pi, 1.0, 1e-10).unwrap();
        for (a, b) in pi.iter().zip(after.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Every vertex and every clamped point of a parameter box lies inside it.
    #[test]
    fn param_space_vertices_and_clamps_stay_inside(
        lo1 in -5.0..5.0f64, w1 in 0.0..5.0f64,
        lo2 in -5.0..5.0f64, w2 in 0.0..5.0f64,
        probe1 in -20.0..20.0f64, probe2 in -20.0..20.0f64,
    ) {
        let space = ParamSpace::new(vec![
            ("a", Interval::new(lo1, lo1 + w1).unwrap()),
            ("b", Interval::new(lo2, lo2 + w2).unwrap()),
        ])
        .unwrap();
        for vertex in space.vertices() {
            prop_assert!(space.contains(&vertex));
        }
        let clamped = space.clamp(&[probe1, probe2]).unwrap();
        prop_assert!(space.contains(&clamped));
        prop_assert!(space.contains(&space.midpoint()));
    }

    /// The drift of a conservative population model sums to zero for every
    /// state and parameter (mass conservation).
    #[test]
    fn conservative_model_drift_sums_to_zero(s in 0.0..1.0f64, i in 0.0..1.0f64, theta in 1.0..10.0f64) {
        let i = i * (1.0 - s);
        let params = ParamSpace::single("contact", 1.0, 10.0).unwrap();
        let model = PopulationModel::builder(3, params)
            .transition(TransitionClass::new("infect", [-1.0, 1.0, 0.0], |x: &StateVec, th: &[f64]| {
                th[0] * x[0] * x[1]
            }))
            .transition(TransitionClass::new("recover", [0.0, -1.0, 1.0], |x: &StateVec, _| 5.0 * x[1]))
            .transition(TransitionClass::new("wane", [1.0, 0.0, -1.0], |x: &StateVec, _| x[2]))
            .build()
            .unwrap();
        let x = StateVec::from([s, i, 1.0 - s - i]);
        let drift = model.drift(&x, &[theta]).unwrap();
        prop_assert!(drift.sum().abs() < 1e-12);
    }

    /// The finite expansion of the bike station always yields exactly
    /// `capacity + 1` states with a stationary distribution that sums to one.
    #[test]
    fn bike_expansion_enumerates_all_levels(capacity in 2usize..25, start in 0usize..25, pickup in 0.2..2.0f64, ret in 0.2..2.0f64) {
        let start = start.min(capacity) as i64;
        let params = ParamSpace::new(vec![
            ("pickup", Interval::new(0.1, 2.0).unwrap()),
            ("return", Interval::new(0.1, 2.0).unwrap()),
        ])
        .unwrap();
        let model = PopulationModel::builder(1, params)
            .transition(TransitionClass::new("pickup", [-1.0], |x: &StateVec, th: &[f64]| {
                if x[0] > 0.0 { th[0] } else { 0.0 }
            }))
            .transition(TransitionClass::new("return", [1.0], |x: &StateVec, th: &[f64]| {
                if x[0] < 1.0 { th[1] } else { 0.0 }
            }))
            .build()
            .unwrap();
        let chain = FiniteChain::expand(&model, capacity, &[start], &[pickup, ret], &ExpansionOptions::default()).unwrap();
        prop_assert_eq!(chain.len(), capacity + 1);
        let pi = chain.generator().stationary_distribution(1e-10, 2_000_000).unwrap();
        prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-8);
    }

    /// Imprecise Kolmogorov bounds always bracket the midpoint chain's exact
    /// transient distribution.
    #[test]
    fn interval_generator_bounds_bracket_midpoint_chain(
        lo in 0.5..1.5f64,
        extra in 0.0..1.5f64,
        back in 0.5..2.0f64,
        t in 0.05..1.0f64,
    ) {
        let mut iq = IntervalGenerator::new(3);
        iq.set_rate_bounds(0, 1, lo, lo + extra).unwrap();
        iq.set_rate_bounds(1, 2, lo, lo + extra).unwrap();
        iq.set_rate_bounds(1, 0, back, back).unwrap();
        iq.set_rate_bounds(2, 1, back, back).unwrap();
        let exact = iq.midpoint_generator().transient_distribution(&[1.0, 0.0, 0.0], t, 1e-10).unwrap();
        let (lower, upper) = iq.transient_bounds(&[1.0, 0.0, 0.0], t, 1e-4).unwrap();
        for s in 0..3 {
            prop_assert!(lower[s] <= exact[s] + 2e-3);
            prop_assert!(upper[s] >= exact[s] - 2e-3);
        }
    }
}
