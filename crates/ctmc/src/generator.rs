//! Dense generators of finite continuous-time Markov chains.
//!
//! The mean-field results of the paper are statements about the limit of a
//! *sequence* of finite CTMCs. To validate the other layers (the stochastic
//! simulator and the mean-field approximation itself) we need the exact
//! answer on small instances; this module provides it through
//! uniformization (transient distributions) and power iteration on the
//! uniformized chain (stationary distributions).

use serde::{Deserialize, Serialize};

use crate::{CtmcError, Result};

/// A dense generator matrix `Q` of a finite CTMC.
///
/// Off-diagonal entries are the transition rates `Q_{xy} ≥ 0`; the diagonal
/// is maintained automatically as the negative row sum, so the invariant
/// `Σ_y Q_{xy} = 0` of the paper's Section II always holds.
///
/// # Example
///
/// A two-state chain flipping between states 0 and 1:
///
/// ```
/// use mfu_ctmc::generator::GeneratorMatrix;
///
/// let mut q = GeneratorMatrix::new(2);
/// q.set_rate(0, 1, 2.0)?;
/// q.set_rate(1, 0, 1.0)?;
/// let pi = q.stationary_distribution(1e-12, 100_000)?;
/// assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
/// assert!((pi[1] - 2.0 / 3.0).abs() < 1e-9);
/// # Ok::<(), mfu_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorMatrix {
    n: usize,
    /// Row-major off-diagonal rates; the diagonal entries are stored too but
    /// always equal the negative off-diagonal row sum.
    rates: Vec<f64>,
}

impl GeneratorMatrix {
    /// Creates the zero generator on `n` states.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a CTMC needs at least one state");
        GeneratorMatrix {
            n,
            rates: vec![0.0; n * n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: the chain has at least one state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the rate of the transition `from → to`.
    ///
    /// # Errors
    ///
    /// Returns an error if the indices are out of range or equal, or the rate
    /// is negative or non-finite.
    pub fn set_rate(&mut self, from: usize, to: usize, rate: f64) -> Result<()> {
        if from >= self.n || to >= self.n {
            return Err(CtmcError::DimensionMismatch {
                expected: self.n,
                found: from.max(to) + 1,
            });
        }
        if from == to {
            return Err(CtmcError::invalid_model(
                "cannot set a diagonal rate directly",
            ));
        }
        if !rate.is_finite() || rate < 0.0 {
            return Err(CtmcError::InvalidRate {
                transition: format!("{from}->{to}"),
                rate,
            });
        }
        let old = self.rates[from * self.n + to];
        self.rates[from * self.n + to] = rate;
        // maintain the diagonal as negative row sum
        self.rates[from * self.n + from] += old - rate;
        Ok(())
    }

    /// Adds `rate` to the transition `from → to` (accumulating parallel
    /// transition classes that target the same state).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GeneratorMatrix::set_rate`].
    pub fn add_rate(&mut self, from: usize, to: usize, rate: f64) -> Result<()> {
        if from >= self.n || to >= self.n {
            return Err(CtmcError::DimensionMismatch {
                expected: self.n,
                found: from.max(to) + 1,
            });
        }
        if from == to {
            return Err(CtmcError::invalid_model(
                "cannot add to a diagonal rate directly",
            ));
        }
        let current = self.rates[from * self.n + to];
        self.set_rate(from, to, current + rate)
    }

    /// Returns entry `Q_{from, to}` (including the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn rate(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "generator index out of range");
        self.rates[from * self.n + to]
    }

    /// Total exit rate of a state (`-Q_{xx}`).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn exit_rate(&self, state: usize) -> f64 {
        -self.rate(state, state)
    }

    /// The uniformization constant `Λ = max_x (-Q_{xx})`.
    pub fn uniformization_rate(&self) -> f64 {
        (0..self.n).fold(0.0_f64, |m, i| m.max(self.exit_rate(i)))
    }

    /// One step of the uniformized DTMC applied to a row distribution:
    /// `out = p · (I + Q/Λ)`.
    fn uniformized_step(&self, lambda: f64, p: &[f64], out: &mut [f64]) {
        out.iter_mut().for_each(|v| *v = 0.0);
        for (i, &pi) in p.iter().enumerate() {
            if pi == 0.0 {
                continue;
            }
            for (j, slot) in out.iter_mut().enumerate() {
                let entry = if i == j {
                    1.0 + self.rates[i * self.n + j] / lambda
                } else {
                    self.rates[i * self.n + j] / lambda
                };
                if entry != 0.0 {
                    *slot += pi * entry;
                }
            }
        }
    }

    /// Transient distribution `p(t) = p(0)·e^{Qt}` via uniformization.
    ///
    /// The truncation error of the Poisson sum is kept below `tolerance`.
    /// Long horizons are split into segments so the Poisson weights never
    /// underflow.
    ///
    /// # Errors
    ///
    /// Returns an error if `initial` is not a probability distribution over
    /// the chain's states, or `t` is negative/non-finite, or `tolerance` is
    /// not in `(0, 1)`.
    pub fn transient_distribution(
        &self,
        initial: &[f64],
        t: f64,
        tolerance: f64,
    ) -> Result<Vec<f64>> {
        self.check_distribution(initial)?;
        if !t.is_finite() || t < 0.0 {
            return Err(CtmcError::invalid_parameter(
                "time horizon must be finite and non-negative",
            ));
        }
        if !(tolerance > 0.0 && tolerance < 1.0) {
            return Err(CtmcError::invalid_parameter("tolerance must lie in (0, 1)"));
        }
        let lambda = self.uniformization_rate();
        if lambda == 0.0 || t == 0.0 {
            return Ok(initial.to_vec());
        }
        // Split long horizons so that Λ·Δt stays below ~400 and e^{-ΛΔt} does
        // not underflow.
        let segments = ((lambda * t) / 400.0).ceil().max(1.0) as usize;
        let dt = t / segments as f64;
        let seg_tolerance = tolerance / segments as f64;

        let mut p = initial.to_vec();
        for _ in 0..segments {
            p = self.transient_segment(&p, lambda, dt, seg_tolerance);
        }
        Ok(p)
    }

    fn transient_segment(&self, initial: &[f64], lambda: f64, dt: f64, tolerance: f64) -> Vec<f64> {
        let q = lambda * dt;
        let mut weight = (-q).exp();
        let mut accumulated = weight;
        let mut result: Vec<f64> = initial.iter().map(|&v| v * weight).collect();
        let mut current = initial.to_vec();
        let mut next = vec![0.0; self.n];
        let mut k = 0usize;
        // crude upper bound on the number of terms needed
        let max_terms = (q + 10.0 * q.sqrt() + 50.0) as usize;
        while accumulated < 1.0 - tolerance && k < max_terms {
            k += 1;
            self.uniformized_step(lambda, &current, &mut next);
            std::mem::swap(&mut current, &mut next);
            weight *= q / k as f64;
            accumulated += weight;
            for (r, &c) in result.iter_mut().zip(current.iter()) {
                *r += weight * c;
            }
        }
        // Renormalise to compensate for the truncated tail.
        let total: f64 = result.iter().sum();
        if total > 0.0 {
            result.iter_mut().for_each(|v| *v /= total);
        }
        result
    }

    /// Stationary distribution via power iteration on the uniformized DTMC.
    ///
    /// # Errors
    ///
    /// Returns an error if the iteration does not converge within
    /// `max_iterations` (e.g. for periodic or reducible chains the
    /// uniformized DTMC still converges because of the self-loop, so failure
    /// here usually means `max_iterations` is too small).
    pub fn stationary_distribution(
        &self,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<Vec<f64>> {
        if tolerance.is_nan() || tolerance <= 0.0 {
            return Err(CtmcError::invalid_parameter("tolerance must be positive"));
        }
        let lambda = self.uniformization_rate();
        if lambda == 0.0 {
            // absorbing everywhere: any distribution is stationary; return uniform
            return Ok(vec![1.0 / self.n as f64; self.n]);
        }
        // Strictly sub-stochastic uniformization constant keeps a self-loop at
        // every state, which makes the DTMC aperiodic.
        let lambda = lambda * 1.05;
        let mut p = vec![1.0 / self.n as f64; self.n];
        let mut next = vec![0.0; self.n];
        for iteration in 0..max_iterations {
            self.uniformized_step(lambda, &p, &mut next);
            let diff = p
                .iter()
                .zip(next.iter())
                .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
            std::mem::swap(&mut p, &mut next);
            if diff < tolerance {
                let total: f64 = p.iter().sum();
                p.iter_mut().for_each(|v| *v /= total);
                return Ok(p);
            }
            let _ = iteration;
        }
        Err(CtmcError::Numerical(mfu_num::NumError::NoConvergence {
            method: "stationary_distribution",
            iterations: max_iterations,
            residual: f64::NAN,
        }))
    }

    /// Expected value of a reward vector under a distribution.
    ///
    /// # Errors
    ///
    /// Returns an error if the lengths disagree with the number of states.
    pub fn expectation(&self, distribution: &[f64], reward: &[f64]) -> Result<f64> {
        if distribution.len() != self.n || reward.len() != self.n {
            return Err(CtmcError::DimensionMismatch {
                expected: self.n,
                found: distribution.len().min(reward.len()),
            });
        }
        Ok(distribution
            .iter()
            .zip(reward.iter())
            .map(|(p, r)| p * r)
            .sum())
    }

    fn check_distribution(&self, p: &[f64]) -> Result<()> {
        if p.len() != self.n {
            return Err(CtmcError::DimensionMismatch {
                expected: self.n,
                found: p.len(),
            });
        }
        if p.iter().any(|&v| v < -1e-12 || !v.is_finite()) {
            return Err(CtmcError::invalid_parameter(
                "distribution has negative or non-finite entries",
            ));
        }
        let total: f64 = p.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(CtmcError::invalid_parameter(format!(
                "distribution sums to {total}, expected 1"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state chain: 0 -> 1 at rate a, 1 -> 0 at rate b.
    fn two_state(a: f64, b: f64) -> GeneratorMatrix {
        let mut q = GeneratorMatrix::new(2);
        q.set_rate(0, 1, a).unwrap();
        q.set_rate(1, 0, b).unwrap();
        q
    }

    /// M/M/1/K queue with arrival rate λ and service rate µ.
    fn mm1k(lambda: f64, mu: f64, k: usize) -> GeneratorMatrix {
        let mut q = GeneratorMatrix::new(k + 1);
        for i in 0..k {
            q.set_rate(i, i + 1, lambda).unwrap();
            q.set_rate(i + 1, i, mu).unwrap();
        }
        q
    }

    #[test]
    fn diagonal_is_negative_row_sum() {
        let q = two_state(2.0, 3.0);
        assert_eq!(q.rate(0, 0), -2.0);
        assert_eq!(q.rate(1, 1), -3.0);
        assert_eq!(q.exit_rate(0), 2.0);
        assert_eq!(q.uniformization_rate(), 3.0);
    }

    #[test]
    fn set_rate_validation() {
        let mut q = GeneratorMatrix::new(2);
        assert!(q.set_rate(0, 0, 1.0).is_err());
        assert!(q.set_rate(0, 5, 1.0).is_err());
        assert!(q.set_rate(0, 1, -1.0).is_err());
        assert!(q.set_rate(0, 1, f64::NAN).is_err());
        assert!(q.set_rate(0, 1, 1.0).is_ok());
        // overwriting adjusts the diagonal correctly
        q.set_rate(0, 1, 4.0).unwrap();
        assert_eq!(q.rate(0, 0), -4.0);
        q.add_rate(0, 1, 1.0).unwrap();
        assert_eq!(q.rate(0, 1), 5.0);
        assert_eq!(q.rate(0, 0), -5.0);
    }

    #[test]
    fn two_state_transient_matches_closed_form() {
        // For a two-state chain, P(X_t = 1 | X_0 = 0) = a/(a+b) (1 - e^{-(a+b)t}).
        let (a, b) = (2.0, 1.0);
        let q = two_state(a, b);
        for &t in &[0.1, 0.5, 1.0, 3.0] {
            let p = q.transient_distribution(&[1.0, 0.0], t, 1e-10).unwrap();
            let expected = a / (a + b) * (1.0 - (-(a + b) * t).exp());
            assert!(
                (p[1] - expected).abs() < 1e-8,
                "t = {t}: {p:?} vs {expected}"
            );
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn transient_at_zero_is_initial() {
        let q = two_state(1.0, 1.0);
        let p = q.transient_distribution(&[0.3, 0.7], 0.0, 1e-9).unwrap();
        assert_eq!(p, vec![0.3, 0.7]);
    }

    #[test]
    fn long_horizon_transient_reaches_stationary() {
        let q = mm1k(1.0, 2.0, 5);
        let mut init = vec![0.0; 6];
        init[0] = 1.0;
        let p = q.transient_distribution(&init, 2000.0, 1e-10).unwrap();
        let pi = q.stationary_distribution(1e-12, 1_000_000).unwrap();
        for (a, b) in p.iter().zip(pi.iter()) {
            assert!((a - b).abs() < 1e-6, "{p:?} vs {pi:?}");
        }
    }

    #[test]
    fn mm1k_stationary_is_truncated_geometric() {
        let (lambda, mu, k) = (1.0, 2.0, 4usize);
        let rho: f64 = lambda / mu;
        let q = mm1k(lambda, mu, k);
        let pi = q.stationary_distribution(1e-13, 1_000_000).unwrap();
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        for (i, &p) in pi.iter().enumerate() {
            let expected = rho.powi(i as i32) / norm;
            assert!((p - expected).abs() < 1e-8, "state {i}: {p} vs {expected}");
        }
    }

    #[test]
    fn transient_input_validation() {
        let q = two_state(1.0, 1.0);
        assert!(q.transient_distribution(&[1.0], 1.0, 1e-9).is_err());
        assert!(q.transient_distribution(&[0.5, 0.2], 1.0, 1e-9).is_err());
        assert!(q.transient_distribution(&[1.0, 0.0], -1.0, 1e-9).is_err());
        assert!(q.transient_distribution(&[1.0, 0.0], 1.0, 0.0).is_err());
    }

    #[test]
    fn zero_generator_is_absorbing() {
        let q = GeneratorMatrix::new(3);
        let p = q
            .transient_distribution(&[0.2, 0.3, 0.5], 10.0, 1e-9)
            .unwrap();
        assert_eq!(p, vec![0.2, 0.3, 0.5]);
        let pi = q.stationary_distribution(1e-9, 100).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_reward() {
        let q = two_state(1.0, 1.0);
        let value = q.expectation(&[0.25, 0.75], &[0.0, 4.0]).unwrap();
        assert!((value - 3.0).abs() < 1e-12);
        assert!(q.expectation(&[1.0], &[0.0, 1.0]).is_err());
    }
}
