//! Population models: transition classes + parameter space.
//!
//! A [`PopulationModel`] is the Rust counterpart of the *imprecise population
//! process* of Definition 4 in the paper: a family of CTMCs indexed by the
//! population size `N`, specified once through density-dependent transition
//! classes and an uncertainty set `Θ`. The same object is consumed by
//!
//! * the stochastic simulator (`mfu-sim`), which interprets it at a finite
//!   `N`;
//! * the explicit state-space expansion ([`crate::finite`]), which builds the
//!   exact generator for small `N`;
//! * the mean-field layer (`mfu-core`), which only needs the drift
//!   `f(x, ϑ) = Σ ℓ_k β_k(x, ϑ)` and the parameter space.

use std::fmt;

use mfu_num::ode::OdeSystem;
use mfu_num::StateVec;

use crate::params::ParamSpace;
use crate::transition::TransitionClass;
use crate::{CtmcError, Result};

/// A population process specified by transition classes over a parameter box.
///
/// See the crate-level example for construction via [`PopulationModel::builder`].
#[derive(Clone)]
pub struct PopulationModel {
    dim: usize,
    names: Vec<String>,
    params: ParamSpace,
    transitions: Vec<TransitionClass>,
}

impl fmt::Debug for PopulationModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PopulationModel")
            .field("dim", &self.dim)
            .field("variables", &self.names)
            .field("parameters", &self.params.names())
            .field("transitions", &self.transitions.len())
            .finish()
    }
}

/// Builder for [`PopulationModel`].
pub struct PopulationModelBuilder {
    dim: usize,
    names: Vec<String>,
    params: ParamSpace,
    transitions: Vec<TransitionClass>,
}

impl PopulationModelBuilder {
    /// Names the state variables (defaults to `x0`, `x1`, …).
    ///
    /// The number of names must match the model dimension; this is validated
    /// by [`PopulationModelBuilder::build`].
    #[must_use]
    pub fn variable_names<S: Into<String>>(mut self, names: Vec<S>) -> Self {
        self.names = names.into_iter().map(Into::into).collect();
        self
    }

    /// Adds a transition class.
    #[must_use]
    pub fn transition(mut self, class: TransitionClass) -> Self {
        self.transitions.push(class);
        self
    }

    /// Finalises the model.
    ///
    /// # Errors
    ///
    /// Returns an error if no transition was added, if any transition's jump
    /// vector has the wrong dimension, or if the variable names do not match
    /// the dimension.
    pub fn build(self) -> Result<PopulationModel> {
        if self.transitions.is_empty() {
            return Err(CtmcError::invalid_model(
                "a population model needs at least one transition",
            ));
        }
        if self.names.len() != self.dim {
            return Err(CtmcError::invalid_model(format!(
                "expected {} variable names, got {}",
                self.dim,
                self.names.len()
            )));
        }
        for t in &self.transitions {
            if t.dim() != self.dim {
                return Err(CtmcError::DimensionMismatch {
                    expected: self.dim,
                    found: t.dim(),
                });
            }
        }
        Ok(PopulationModel {
            dim: self.dim,
            names: self.names,
            params: self.params,
            transitions: self.transitions,
        })
    }
}

impl PopulationModel {
    /// Starts building a model with `dim` state variables over the parameter
    /// space `params`.
    pub fn builder(dim: usize, params: ParamSpace) -> PopulationModelBuilder {
        PopulationModelBuilder {
            dim,
            names: (0..dim).map(|i| format!("x{i}")).collect(),
            params,
            transitions: Vec::new(),
        }
    }

    /// State dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// State variable names.
    pub fn variable_names(&self) -> &[String] {
        &self.names
    }

    /// The parameter space `Θ`.
    pub fn params(&self) -> &ParamSpace {
        &self.params
    }

    /// The transition classes.
    pub fn transitions(&self) -> &[TransitionClass] {
        &self.transitions
    }

    /// Evaluates the drift `f(x, ϑ) = Σ_k ℓ_k β_k(x, ϑ)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `x` or `theta` have the wrong dimension, or if a
    /// rate function returns a negative or non-finite value.
    pub fn drift(&self, x: &StateVec, theta: &[f64]) -> Result<StateVec> {
        self.check_dims(x, theta)?;
        let mut acc = StateVec::zeros(self.dim);
        for t in &self.transitions {
            let r = t.rate(x, theta);
            if !r.is_finite() || r < 0.0 {
                return Err(CtmcError::InvalidRate {
                    transition: t.name().to_string(),
                    rate: r,
                });
            }
            acc.add_scaled(r, t.change());
        }
        Ok(acc)
    }

    /// Evaluates the drift without validating rates (hot path for integrators).
    ///
    /// Negative or non-finite rates are used as-is; prefer
    /// [`PopulationModel::drift`] outside of inner loops.
    pub fn drift_unchecked(&self, x: &StateVec, theta: &[f64], acc: &mut StateVec) {
        acc.fill_zero();
        for t in &self.transitions {
            t.accumulate_drift(x, theta, acc);
        }
    }

    /// Total exit-rate density `Σ_k β_k(x, ϑ)` at a state (the jump intensity
    /// of the scaled process divided by `N`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`PopulationModel::drift`].
    pub fn total_rate(&self, x: &StateVec, theta: &[f64]) -> Result<f64> {
        self.check_dims(x, theta)?;
        let mut total = 0.0;
        for t in &self.transitions {
            let r = t.rate(x, theta);
            if !r.is_finite() || r < 0.0 {
                return Err(CtmcError::InvalidRate {
                    transition: t.name().to_string(),
                    rate: r,
                });
            }
            total += r;
        }
        Ok(total)
    }

    /// Returns the mean-field ODE `ẋ = f(x, ϑ)` for a *fixed* parameter, as an
    /// [`OdeSystem`] ready for the integrators in `mfu-num`.
    ///
    /// This is the uncertain-scenario limit of Corollary 1 for one candidate
    /// value of `ϑ`.
    pub fn ode_for(&self, theta: Vec<f64>) -> FixedParamOde<'_> {
        FixedParamOde { model: self, theta }
    }

    /// Numerically checks the scaling assumptions of Definition 4 on a set of
    /// sample states: every rate must be finite and non-negative at every
    /// vertex of `Θ`, and the drift must stay bounded by `bound`.
    ///
    /// This does not *prove* the assumptions (they are about the `N → ∞`
    /// limit) but catches the usual modelling mistakes — negative rates,
    /// unbounded drifts inside the domain of interest.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_scaling_assumptions(&self, sample_states: &[StateVec], bound: f64) -> Result<()> {
        for x in sample_states {
            for theta in self.params.vertices() {
                let drift = self.drift(x, &theta)?;
                if drift.norm_inf() > bound {
                    return Err(CtmcError::invalid_model(format!(
                        "drift norm {:.3} exceeds bound {bound} at state {x}",
                        drift.norm_inf()
                    )));
                }
            }
        }
        Ok(())
    }

    fn check_dims(&self, x: &StateVec, theta: &[f64]) -> Result<()> {
        if x.dim() != self.dim {
            return Err(CtmcError::DimensionMismatch {
                expected: self.dim,
                found: x.dim(),
            });
        }
        if theta.len() != self.params.dim() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.params.dim(),
                found: theta.len(),
            });
        }
        Ok(())
    }
}

/// The mean-field ODE of a population model at a fixed parameter value.
///
/// Created by [`PopulationModel::ode_for`]; borrows the model.
#[derive(Debug, Clone)]
pub struct FixedParamOde<'a> {
    model: &'a PopulationModel,
    theta: Vec<f64>,
}

impl FixedParamOde<'_> {
    /// The parameter value this ODE was instantiated with.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }
}

impl OdeSystem for FixedParamOde<'_> {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn rhs(&self, _t: f64, x: &StateVec, dx: &mut StateVec) {
        self.model.drift_unchecked(x, &self.theta, dx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Interval;
    use mfu_num::ode::{Dopri45, Integrator};

    /// The SIR model of Section V with (a, b, c) fixed and ϑ uncertain,
    /// expressed on the full 3-dimensional simplex.
    fn sir_model() -> PopulationModel {
        let a = 0.1;
        let b = 5.0;
        let c = 1.0;
        let params = ParamSpace::new(vec![("contact", Interval::new(1.0, 10.0).unwrap())]).unwrap();
        PopulationModel::builder(3, params)
            .variable_names(vec!["S", "I", "R"])
            .transition(TransitionClass::new(
                "infect",
                [-1.0, 1.0, 0.0],
                move |x: &StateVec, th: &[f64]| a * x[0] + th[0] * x[0] * x[1],
            ))
            .transition(TransitionClass::new(
                "recover",
                [0.0, -1.0, 1.0],
                move |x: &StateVec, _| b * x[1],
            ))
            .transition(TransitionClass::new(
                "lose_immunity",
                [1.0, 0.0, -1.0],
                move |x: &StateVec, _| c * x[2],
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn drift_matches_hand_computation() {
        let model = sir_model();
        let x = StateVec::from([0.7, 0.3, 0.0]);
        let drift = model.drift(&x, &[2.0]).unwrap();
        // infection rate = 0.1*0.7 + 2*0.7*0.3 = 0.07 + 0.42 = 0.49
        // recovery rate  = 5*0.3 = 1.5 ; immunity loss = 0
        assert!((drift[0] - (-0.49)).abs() < 1e-12);
        assert!((drift[1] - (0.49 - 1.5)).abs() < 1e-12);
        assert!((drift[2] - 1.5).abs() < 1e-12);
        // conservation: drift components sum to zero on the simplex
        assert!(drift.sum().abs() < 1e-12);
    }

    #[test]
    fn total_rate_sums_transition_densities() {
        let model = sir_model();
        let x = StateVec::from([0.7, 0.3, 0.0]);
        let total = model.total_rate(&x, &[2.0]).unwrap();
        assert!((total - (0.49 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn dimension_checks() {
        let model = sir_model();
        assert!(model.drift(&StateVec::from([0.5, 0.5]), &[2.0]).is_err());
        assert!(model
            .drift(&StateVec::from([0.5, 0.5, 0.0]), &[2.0, 3.0])
            .is_err());
    }

    #[test]
    fn negative_rate_is_reported_with_transition_name() {
        let params = ParamSpace::single("r", 0.0, 1.0).unwrap();
        let model = PopulationModel::builder(1, params)
            .transition(TransitionClass::new("bad", [1.0], |x: &StateVec, _| {
                -x[0] - 1.0
            }))
            .build()
            .unwrap();
        let err = model.drift(&StateVec::from([0.0]), &[0.5]).unwrap_err();
        match err {
            CtmcError::InvalidRate { transition, rate } => {
                assert_eq!(transition, "bad");
                assert_eq!(rate, -1.0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn builder_validation() {
        let params = ParamSpace::single("r", 0.0, 1.0).unwrap();
        assert!(PopulationModel::builder(1, params.clone()).build().is_err());
        let wrong_dim = PopulationModel::builder(2, params.clone())
            .transition(TransitionClass::new(
                "t",
                [1.0],
                |_: &StateVec, _: &[f64]| 1.0,
            ))
            .build();
        assert!(wrong_dim.is_err());
        let wrong_names = PopulationModel::builder(1, params)
            .variable_names(vec!["a", "b"])
            .transition(TransitionClass::new(
                "t",
                [1.0],
                |_: &StateVec, _: &[f64]| 1.0,
            ))
            .build();
        assert!(wrong_names.is_err());
    }

    #[test]
    fn ode_for_integrates_mean_field() {
        let model = sir_model();
        let ode = model.ode_for(vec![3.0]);
        assert_eq!(ode.theta(), &[3.0]);
        let x0 = StateVec::from([0.7, 0.3, 0.0]);
        let traj = Dopri45::default().integrate(&ode, 0.0, x0, 5.0).unwrap();
        let end = traj.last_state();
        // mass conservation along the mean field
        assert!((end.sum() - 1.0).abs() < 1e-6);
        // all coordinates remain in [0, 1]
        for &v in end.as_slice() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn scaling_check_accepts_sir_and_rejects_blowup() {
        let model = sir_model();
        let samples = vec![
            StateVec::from([1.0, 0.0, 0.0]),
            StateVec::from([0.3, 0.3, 0.4]),
            StateVec::from([0.0, 0.0, 1.0]),
        ];
        assert!(model.check_scaling_assumptions(&samples, 100.0).is_ok());
        assert!(model.check_scaling_assumptions(&samples, 1e-6).is_err());
    }

    #[test]
    fn debug_shows_summary() {
        let model = sir_model();
        let text = format!("{model:?}");
        assert!(text.contains("transitions"));
        assert!(text.contains("3"));
    }
}
