//! Uncertainty sets `Θ` for imprecise and uncertain models.
//!
//! The paper assumes the uncertain parameters live in a box
//! `Θ = [ϑ₁^min, ϑ₁^max] × … × [ϑ_m^min, ϑ_m^max]`. In the *uncertain*
//! scenario the parameter is an unknown constant of `Θ`; in the *imprecise*
//! scenario it may vary in time arbitrarily inside `Θ`. Both analyses need
//! the same primitive operations on `Θ`: membership, vertex enumeration
//! (optimisation of drifts that are affine in `ϑ` is attained at a vertex),
//! grid sampling (for parameter sweeps) and projection/clamping.

use serde::{Deserialize, Serialize};

use crate::{CtmcError, Result};

/// A closed interval `[lo, hi]` of admissible values for one parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns an error if the bounds are not finite or `lo > hi`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() {
            return Err(CtmcError::invalid_parameter(
                "interval bounds must be finite",
            ));
        }
        if lo > hi {
            return Err(CtmcError::invalid_parameter(format!(
                "interval lower bound {lo} exceeds upper bound {hi}"
            )));
        }
        Ok(Interval { lo, hi })
    }

    /// Creates a degenerate interval `[v, v]` (a precisely known parameter).
    ///
    /// # Errors
    ///
    /// Returns an error if `v` is not finite.
    pub fn point(v: f64) -> Result<Self> {
        Interval::new(v, v)
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Returns `true` when the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Membership test.
    pub fn contains(&self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Clamps `v` into the interval.
    pub fn clamp(&self, v: f64) -> f64 {
        v.clamp(self.lo, self.hi)
    }

    /// `n + 1` equally spaced sample values spanning the interval
    /// (or just the single point for a degenerate interval).
    pub fn linspace(&self, n: usize) -> Vec<f64> {
        if self.is_point() || n == 0 {
            return vec![self.lo];
        }
        (0..=n)
            .map(|k| self.lo + self.width() * (k as f64) / (n as f64))
            .collect()
    }
}

/// The uncertainty set `Θ`: a named box of parameter intervals.
///
/// # Example
///
/// ```
/// use mfu_ctmc::params::{Interval, ParamSpace};
///
/// let theta = ParamSpace::new(vec![
///     ("infection", Interval::new(1.0, 10.0)?),
///     ("recovery", Interval::point(5.0)?),
/// ])?;
/// assert_eq!(theta.dim(), 2);
/// assert_eq!(theta.vertices().len(), 2); // only the uncertain axis doubles the count
/// assert!(theta.contains(&[3.0, 5.0]));
/// # Ok::<(), mfu_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    names: Vec<String>,
    intervals: Vec<Interval>,
}

impl ParamSpace {
    /// Creates a parameter space from `(name, interval)` pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if no parameters are given or names are duplicated.
    pub fn new<S: Into<String>>(params: Vec<(S, Interval)>) -> Result<Self> {
        if params.is_empty() {
            return Err(CtmcError::invalid_parameter(
                "parameter space must have at least one parameter",
            ));
        }
        let mut names = Vec::with_capacity(params.len());
        let mut intervals = Vec::with_capacity(params.len());
        for (name, interval) in params {
            let name = name.into();
            if names.contains(&name) {
                return Err(CtmcError::invalid_parameter(format!(
                    "duplicate parameter name '{name}'"
                )));
            }
            names.push(name);
            intervals.push(interval);
        }
        Ok(ParamSpace { names, intervals })
    }

    /// Creates a parameter space with a single parameter.
    ///
    /// # Errors
    ///
    /// Propagates interval-construction failures.
    pub fn single(name: impl Into<String>, lo: f64, hi: f64) -> Result<Self> {
        ParamSpace::new(vec![(name.into(), Interval::new(lo, hi)?)])
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.intervals.len()
    }

    /// Parameter names, in declaration order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Parameter intervals, in declaration order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Index of the parameter called `name`, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Lower-bound corner of the box.
    pub fn lower(&self) -> Vec<f64> {
        self.intervals.iter().map(Interval::lo).collect()
    }

    /// Upper-bound corner of the box.
    pub fn upper(&self) -> Vec<f64> {
        self.intervals.iter().map(Interval::hi).collect()
    }

    /// Midpoint of the box.
    pub fn midpoint(&self) -> Vec<f64> {
        self.intervals.iter().map(Interval::midpoint).collect()
    }

    /// Returns `true` when every interval is a single point (a precise model).
    pub fn is_precise(&self) -> bool {
        self.intervals.iter().all(Interval::is_point)
    }

    /// Membership test for a parameter vector.
    pub fn contains(&self, theta: &[f64]) -> bool {
        theta.len() == self.dim()
            && self
                .intervals
                .iter()
                .zip(theta.iter())
                .all(|(i, v)| i.contains(*v))
    }

    /// Clamps a parameter vector into the box.
    ///
    /// # Errors
    ///
    /// Returns an error if `theta` has the wrong dimension.
    pub fn clamp(&self, theta: &[f64]) -> Result<Vec<f64>> {
        if theta.len() != self.dim() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.dim(),
                found: theta.len(),
            });
        }
        Ok(self
            .intervals
            .iter()
            .zip(theta.iter())
            .map(|(i, v)| i.clamp(*v))
            .collect())
    }

    /// Enumerates the vertices of the box.
    ///
    /// Degenerate (point) intervals do not multiply the vertex count, so a
    /// model with one uncertain parameter and several known constants has
    /// exactly two vertices. For drifts affine in `ϑ` — which covers every
    /// model in the paper — optimisation of a linear functional of the drift
    /// over `Θ` is attained at one of these vertices.
    pub fn vertices(&self) -> Vec<Vec<f64>> {
        let free: Vec<usize> = (0..self.dim())
            .filter(|&i| !self.intervals[i].is_point())
            .collect();
        let count = 1usize << free.len();
        let mut out = Vec::with_capacity(count);
        for mask in 0..count {
            let mut v = self.midpoint();
            for (bit, &axis) in free.iter().enumerate() {
                v[axis] = if mask & (1 << bit) != 0 {
                    self.intervals[axis].hi()
                } else {
                    self.intervals[axis].lo()
                };
            }
            // point intervals stay at their midpoint == exact value
            for (value, interval) in v.iter_mut().zip(self.intervals.iter()) {
                if interval.is_point() {
                    *value = interval.lo();
                }
            }
            out.push(v);
        }
        out
    }

    /// A regular grid with `per_axis + 1` samples along each non-degenerate
    /// axis (degenerate axes contribute their single value).
    ///
    /// Used by the uncertain-scenario parameter sweeps of Corollary 1.
    pub fn grid(&self, per_axis: usize) -> Vec<Vec<f64>> {
        let axes: Vec<Vec<f64>> = self
            .intervals
            .iter()
            .map(|i| i.linspace(per_axis))
            .collect();
        let mut out: Vec<Vec<f64>> = vec![Vec::with_capacity(self.dim())];
        for axis in axes {
            let mut next = Vec::with_capacity(out.len() * axis.len());
            for partial in &out {
                for &v in &axis {
                    let mut p = partial.clone();
                    p.push(v);
                    next.push(p);
                }
            }
            out = next;
        }
        out
    }

    /// Uniform random sample from the box using the provided source of
    /// unit-interval randomness (one call per free axis).
    ///
    /// The caller supplies the random values to keep this crate independent
    /// from any RNG implementation; `mfu-sim` wires this to `rand`.
    pub fn sample_with(&self, mut unit_uniform: impl FnMut() -> f64) -> Vec<f64> {
        self.intervals
            .iter()
            .map(|i| {
                if i.is_point() {
                    i.lo()
                } else {
                    i.lo() + i.width() * unit_uniform().clamp(0.0, 1.0)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_construction_and_accessors() {
        let i = Interval::new(1.0, 3.0).unwrap();
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 3.0);
        assert_eq!(i.width(), 2.0);
        assert_eq!(i.midpoint(), 2.0);
        assert!(!i.is_point());
        assert!(i.contains(2.5));
        assert!(!i.contains(3.5));
        assert_eq!(i.clamp(5.0), 3.0);
        assert_eq!(i.clamp(-5.0), 1.0);
    }

    #[test]
    fn interval_rejects_bad_bounds() {
        assert!(Interval::new(2.0, 1.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn interval_linspace() {
        let i = Interval::new(0.0, 1.0).unwrap();
        let pts = i.linspace(4);
        assert_eq!(pts.len(), 5);
        assert!((pts[1] - 0.25).abs() < 1e-15);
        let p = Interval::point(2.0).unwrap();
        assert_eq!(p.linspace(10), vec![2.0]);
    }

    fn sir_theta() -> ParamSpace {
        ParamSpace::new(vec![
            ("contact", Interval::new(1.0, 10.0).unwrap()),
            ("recovery", Interval::point(5.0).unwrap()),
        ])
        .unwrap()
    }

    #[test]
    fn param_space_basics() {
        let theta = sir_theta();
        assert_eq!(theta.dim(), 2);
        assert_eq!(
            theta.names(),
            &["contact".to_string(), "recovery".to_string()]
        );
        assert_eq!(theta.index_of("recovery"), Some(1));
        assert_eq!(theta.index_of("missing"), None);
        assert_eq!(theta.lower(), vec![1.0, 5.0]);
        assert_eq!(theta.upper(), vec![10.0, 5.0]);
        assert_eq!(theta.midpoint(), vec![5.5, 5.0]);
        assert!(!theta.is_precise());
        assert!(theta.contains(&[2.0, 5.0]));
        assert!(!theta.contains(&[2.0, 4.0]));
        assert!(!theta.contains(&[2.0]));
    }

    #[test]
    fn param_space_rejects_duplicates_and_empty() {
        assert!(ParamSpace::new(Vec::<(&str, Interval)>::new()).is_err());
        assert!(ParamSpace::new(vec![
            ("a", Interval::point(1.0).unwrap()),
            ("a", Interval::point(2.0).unwrap())
        ])
        .is_err());
    }

    #[test]
    fn clamp_projects_into_box() {
        let theta = sir_theta();
        assert_eq!(theta.clamp(&[20.0, 0.0]).unwrap(), vec![10.0, 5.0]);
        assert!(theta.clamp(&[1.0]).is_err());
    }

    #[test]
    fn vertices_skip_degenerate_axes() {
        let theta = sir_theta();
        let vs = theta.vertices();
        assert_eq!(vs.len(), 2);
        assert!(vs.contains(&vec![1.0, 5.0]));
        assert!(vs.contains(&vec![10.0, 5.0]));

        let two_free = ParamSpace::new(vec![
            ("a", Interval::new(0.0, 1.0).unwrap()),
            ("b", Interval::new(2.0, 3.0).unwrap()),
        ])
        .unwrap();
        assert_eq!(two_free.vertices().len(), 4);
    }

    #[test]
    fn precise_space_has_single_vertex() {
        let theta = ParamSpace::new(vec![("a", Interval::point(1.0).unwrap())]).unwrap();
        assert!(theta.is_precise());
        assert_eq!(theta.vertices(), vec![vec![1.0]]);
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let theta = ParamSpace::new(vec![
            ("a", Interval::new(0.0, 1.0).unwrap()),
            ("b", Interval::point(7.0).unwrap()),
        ])
        .unwrap();
        let grid = theta.grid(2);
        assert_eq!(grid.len(), 3);
        assert!(grid.contains(&vec![0.5, 7.0]));
    }

    #[test]
    fn sample_with_respects_bounds() {
        let theta = sir_theta();
        let sample = theta.sample_with(|| 0.25);
        assert_eq!(sample.len(), 2);
        assert!((sample[0] - 3.25).abs() < 1e-12);
        assert_eq!(sample[1], 5.0);
        assert!(theta.contains(&sample));
    }

    #[test]
    fn single_constructor() {
        let theta = ParamSpace::single("rate", 1.0, 2.0).unwrap();
        assert_eq!(theta.dim(), 1);
        assert_eq!(theta.names()[0], "rate");
    }
}
