//! Density-dependent transition classes.
//!
//! Population processes are specified by *transition classes* (Section III-A
//! of the paper): each class has a jump vector `ℓ` on the counting variables
//! and a density-dependent rate `N·β(x, ϑ)`, where `x` is the normalised
//! state (counts divided by the scale `N`) and `ϑ` the — possibly imprecise —
//! parameter vector. The drift of the scaled process is then
//! `f(x, ϑ) = Σ_classes ℓ·β(x, ϑ)`, independent of `N`, which is exactly the
//! quantity whose set-valued closure drives the mean-field differential
//! inclusion.
//!
//! Rates come in two flavours, unified by the [`RateFn`] enum:
//!
//! * **native closures** — arbitrary Rust functions, the historical
//!   representation, created through [`TransitionClass::new`];
//! * **compiled programs** — objects implementing [`CompiledRate`], such as
//!   the flat bytecode programs the `mfu-lang` DSL lowers its rate
//!   expressions to, created through [`TransitionClass::compiled`]. Compiled
//!   rates additionally report which state coordinates they read
//!   ([`CompiledRate::species_support`]), which lets the Gillespie simulator
//!   build a transition dependency graph and skip propensity re-evaluations.

use std::fmt;
use std::sync::Arc;

use mfu_num::batch::{BatchTheta, SoaBatch};
use mfu_num::StateVec;

/// Signature of a native rate closure: `β(x, ϑ)`.
///
/// The function receives the *normalised* state `x` and the parameter vector
/// `ϑ`, and returns the rate density (the actual CTMC jump rate at population
/// size `N` is `N·β(x, ϑ)`).
pub type NativeRateFn = dyn Fn(&StateVec, &[f64]) -> f64 + Send + Sync;

/// An object-safe rate evaluator compiled to some flat, introspectable form.
///
/// Implemented by `mfu_lang::vm::RateProgram` (a register-based bytecode
/// program); any representation that can evaluate `β(x, ϑ)` and report the
/// state coordinates it reads qualifies.
pub trait CompiledRate: Send + Sync {
    /// Evaluates the rate density `β(x, ϑ)`.
    fn eval(&self, x: &StateVec, theta: &[f64]) -> f64;

    /// The state coordinates the rate reads, sorted and deduplicated.
    ///
    /// An empty slice means the rate is constant in the state.
    fn species_support(&self) -> &[usize];

    /// Evaluates the rate for a whole [`SoaBatch`] of states — one value
    /// per lane into `out`. Implementations must keep every lane
    /// *bit-identical* to a scalar [`CompiledRate::eval`] on that lane's
    /// `(x, ϑ)`; the default honours the contract trivially by gathering
    /// each lane and calling the scalar path. Genuinely batched evaluators
    /// (the `mfu-lang` VM) override this with a lane-parallel pass.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.width()` or a per-lane `theta` batch does
    /// not cover every lane.
    fn eval_batch_into(&self, x: &SoaBatch, theta: BatchTheta<'_>, out: &mut [f64]) {
        assert_eq!(out.len(), x.width(), "one output slot per lane");
        assert!(theta.covers(x.width()), "per-lane theta width mismatch");
        let mut lane_x = StateVec::zeros(x.rows());
        let mut lane_theta = Vec::new();
        for (l, slot) in out.iter_mut().enumerate() {
            x.copy_lane_into(l, lane_x.as_mut_slice());
            let th = theta.lane(l, &mut lane_theta);
            *slot = self.eval(&lane_x, th);
        }
    }
}

/// Rate function of a transition class: a native closure or a compiled
/// program.
#[derive(Clone)]
pub enum RateFn {
    /// An arbitrary Rust closure; its state dependencies are unknown.
    Native(Arc<NativeRateFn>),
    /// A compiled rate program with a known species support.
    Compiled(Arc<dyn CompiledRate>),
}

impl RateFn {
    /// Evaluates the rate density `β(x, ϑ)`.
    #[inline]
    pub fn eval(&self, x: &StateVec, theta: &[f64]) -> f64 {
        match self {
            RateFn::Native(f) => f(x, theta),
            RateFn::Compiled(p) => p.eval(x, theta),
        }
    }

    /// Evaluates the rate density over a [`SoaBatch`] of states, one value
    /// per lane. Compiled programs use their lane-parallel batched path;
    /// native closures fall back to a per-lane scalar gather. Either way
    /// every lane is bit-identical to [`RateFn::eval`] on that lane's
    /// `(x, ϑ)`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != x.width()` or a per-lane `theta` batch does
    /// not cover every lane.
    pub fn eval_batch_into(&self, x: &SoaBatch, theta: BatchTheta<'_>, out: &mut [f64]) {
        match self {
            RateFn::Native(f) => {
                assert_eq!(out.len(), x.width(), "one output slot per lane");
                assert!(theta.covers(x.width()), "per-lane theta width mismatch");
                let mut lane_x = StateVec::zeros(x.rows());
                let mut lane_theta = Vec::new();
                for (l, slot) in out.iter_mut().enumerate() {
                    x.copy_lane_into(l, lane_x.as_mut_slice());
                    let th = theta.lane(l, &mut lane_theta);
                    *slot = f(&lane_x, th);
                }
            }
            RateFn::Compiled(p) => p.eval_batch_into(x, theta, out),
        }
    }

    /// `true` when the rate is a compiled program.
    pub fn is_compiled(&self) -> bool {
        matches!(self, RateFn::Compiled(_))
    }

    /// The state coordinates the rate reads, when known.
    ///
    /// `None` means the dependencies are unknown (native closure without an
    /// explicit annotation) and callers must conservatively assume the rate
    /// reads every coordinate.
    pub fn species_support(&self) -> Option<&[usize]> {
        match self {
            RateFn::Native(_) => None,
            RateFn::Compiled(p) => Some(p.species_support()),
        }
    }
}

impl fmt::Debug for RateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateFn::Native(_) => f.write_str("RateFn::Native"),
            RateFn::Compiled(p) => f
                .debug_struct("RateFn::Compiled")
                .field("species_support", &p.species_support())
                .finish(),
        }
    }
}

/// A single transition class of a population model.
///
/// # Example
///
/// The infection transition of the SIR model of Section V: susceptible and
/// infected meet at rate `ϑ·x_S·x_I`, plus an external infection source `a·x_S`.
///
/// ```
/// use mfu_ctmc::transition::TransitionClass;
/// use mfu_num::StateVec;
///
/// let a = 0.1;
/// let infect = TransitionClass::new(
///     "infection",
///     [-1.0, 1.0, 0.0],
///     move |x: &StateVec, theta: &[f64]| a * x[0] + theta[0] * x[0] * x[1],
/// );
/// let rate = infect.rate(&StateVec::from(vec![0.7, 0.3, 0.0]), &[2.0]);
/// assert!((rate - (0.07 + 0.42)).abs() < 1e-12);
/// ```
#[derive(Clone)]
pub struct TransitionClass {
    name: String,
    change: StateVec,
    rate: RateFn,
    /// Explicit species support for native closures (see
    /// [`TransitionClass::with_species_support`]); compiled rates carry their
    /// own support.
    support: Option<Vec<usize>>,
}

impl TransitionClass {
    /// Creates a transition class with a native rate closure.
    ///
    /// `change` is the jump vector on the *counting* variables (the
    /// normalised state jumps by `change / N`); `rate` is the density
    /// `β(x, ϑ)`.
    pub fn new<C, F>(name: impl Into<String>, change: C, rate: F) -> Self
    where
        C: Into<StateVec>,
        F: Fn(&StateVec, &[f64]) -> f64 + Send + Sync + 'static,
    {
        TransitionClass {
            name: name.into(),
            change: change.into(),
            rate: RateFn::Native(Arc::new(rate)),
            support: None,
        }
    }

    /// Creates a transition class whose rate is a compiled program.
    pub fn compiled<C>(name: impl Into<String>, change: C, rate: Arc<dyn CompiledRate>) -> Self
    where
        C: Into<StateVec>,
    {
        TransitionClass {
            name: name.into(),
            change: change.into(),
            rate: RateFn::Compiled(rate),
            support: None,
        }
    }

    /// Declares the state coordinates a *native* rate closure reads, enabling
    /// the dependency-graph Gillespie path for hand-coded models.
    ///
    /// The declaration is trusted: listing fewer coordinates than the closure
    /// actually reads silently breaks the simulator's selective propensity
    /// updates. Compiled rates ignore the annotation — their support is
    /// derived from the program itself.
    #[must_use]
    pub fn with_species_support(mut self, mut support: Vec<usize>) -> Self {
        support.sort_unstable();
        support.dedup();
        self.support = Some(support);
        self
    }

    /// Name of the transition class (used in diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The jump vector on the counting variables.
    pub fn change(&self) -> &StateVec {
        &self.change
    }

    /// Dimension of the state space this class acts on.
    pub fn dim(&self) -> usize {
        self.change.dim()
    }

    /// The underlying rate function (closure or compiled program).
    pub fn rate_fn(&self) -> &RateFn {
        &self.rate
    }

    /// The state coordinates the rate reads, when known: the compiled
    /// program's support, or the explicit
    /// [`TransitionClass::with_species_support`] annotation for native
    /// closures. `None` means "assume all coordinates".
    pub fn species_support(&self) -> Option<&[usize]> {
        match &self.rate {
            RateFn::Compiled(p) => Some(p.species_support()),
            RateFn::Native(_) => self.support.as_deref(),
        }
    }

    /// Evaluates the rate density `β(x, ϑ)`.
    #[inline]
    pub fn rate(&self, x: &StateVec, theta: &[f64]) -> f64 {
        self.rate.eval(x, theta)
    }

    /// Adds `rate(x, ϑ) · change` into `acc` — one term of the drift sum.
    pub fn accumulate_drift(&self, x: &StateVec, theta: &[f64], acc: &mut StateVec) {
        let r = self.rate(x, theta);
        if r != 0.0 {
            acc.add_scaled(r, &self.change);
        }
    }

    /// The nonzero entries of the integer jump vector as sorted
    /// `(species, change)` pairs — the sparse form simulators apply per
    /// firing, so one event costs `O(species changed)` instead of
    /// `O(dim)`. Fractional jump entries are rounded to the nearest
    /// integer (population jumps are integral by construction).
    pub fn sparse_integer_changes(&self) -> Vec<(usize, i64)> {
        self.change
            .iter()
            .enumerate()
            .map(|(i, &v)| (i, v.round() as i64))
            .filter(|&(_, j)| j != 0)
            .collect()
    }
}

/// Applies `firings` simultaneous firings of one sparse integer jump to the
/// counting state: `counts[i] += change · firings` for every `(i, change)`
/// pair. Returns `false` — leaving `counts` untouched — if any coordinate
/// would go negative, which is how simulators reject boundary-crossing
/// events (`firings = 1`, floating-point noise in a guard rate) and
/// τ-leaps whose Poisson firing counts overshoot a population.
///
/// # Panics
///
/// Panics if a species index is out of range for `counts`.
pub fn apply_firings(counts: &mut [i64], jump: &[(usize, i64)], firings: i64) -> bool {
    if jump.iter().any(|&(i, j)| counts[i] + j * firings < 0) {
        return false;
    }
    for &(i, j) in jump {
        counts[i] += j * firings;
    }
    true
}

/// Accumulates `firings` firings of one sparse integer jump into a dense
/// per-species delta buffer (`delta[i] += change · firings`), without any
/// negativity check. τ-leaping uses this to aggregate the net effect of
/// *all* transition classes of a leap before accepting or rejecting the
/// whole leap at once — per-transition checks ([`apply_firings`]) would
/// wrongly reject leaps whose intermediate, but not net, state dips
/// negative.
///
/// # Panics
///
/// Panics if a species index is out of range for `delta`.
pub fn accumulate_firings(delta: &mut [i64], jump: &[(usize, i64)], firings: i64) {
    for &(i, j) in jump {
        delta[i] += j * firings;
    }
}

impl fmt::Debug for TransitionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitionClass")
            .field("name", &self.name)
            .field("change", &self.change)
            .field("rate", &self.rate)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infection() -> TransitionClass {
        TransitionClass::new("infection", [-1.0, 1.0], |x: &StateVec, theta: &[f64]| {
            theta[0] * x[0] * x[1]
        })
    }

    /// A minimal compiled rate for the tests: `c · x_i`.
    struct LinearRate {
        c: f64,
        i: usize,
        support: Vec<usize>,
    }

    impl LinearRate {
        fn new(c: f64, i: usize) -> Self {
            LinearRate {
                c,
                i,
                support: vec![i],
            }
        }
    }

    impl CompiledRate for LinearRate {
        fn eval(&self, x: &StateVec, _theta: &[f64]) -> f64 {
            self.c * x[self.i]
        }

        fn species_support(&self) -> &[usize] {
            &self.support
        }
    }

    #[test]
    fn rate_and_change_accessors() {
        let t = infection();
        assert_eq!(t.name(), "infection");
        assert_eq!(t.dim(), 2);
        assert_eq!(t.change().as_slice(), &[-1.0, 1.0]);
        let x = StateVec::from([0.5, 0.2]);
        assert!((t.rate(&x, &[3.0]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn accumulate_drift_adds_scaled_change() {
        let t = infection();
        let x = StateVec::from([0.5, 0.2]);
        let mut acc = StateVec::zeros(2);
        t.accumulate_drift(&x, &[3.0], &mut acc);
        assert!((acc[0] + 0.3).abs() < 1e-12);
        assert!((acc[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_leaves_accumulator_untouched() {
        let t = infection();
        let x = StateVec::from([0.0, 0.2]);
        let mut acc = StateVec::from([1.0, 1.0]);
        t.accumulate_drift(&x, &[3.0], &mut acc);
        assert_eq!(acc.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn clone_shares_rate_function() {
        let t = infection();
        let u = t.clone();
        let x = StateVec::from([1.0, 1.0]);
        assert_eq!(t.rate(&x, &[2.0]), u.rate(&x, &[2.0]));
    }

    #[test]
    fn debug_output_mentions_name() {
        let t = infection();
        let dbg = format!("{t:?}");
        assert!(dbg.contains("infection"));
    }

    #[test]
    fn native_rates_have_unknown_support_unless_annotated() {
        let t = infection();
        assert!(!t.rate_fn().is_compiled());
        assert!(t.species_support().is_none());
        assert!(t.rate_fn().species_support().is_none());

        let annotated = infection().with_species_support(vec![1, 0, 1]);
        assert_eq!(annotated.species_support(), Some(&[0, 1][..]));
    }

    #[test]
    fn compiled_rates_evaluate_and_report_support() {
        let t = TransitionClass::compiled("decay", [-1.0, 0.0], Arc::new(LinearRate::new(2.0, 0)));
        assert!(t.rate_fn().is_compiled());
        assert_eq!(t.species_support(), Some(&[0][..]));
        let x = StateVec::from([0.4, 0.9]);
        assert!((t.rate(&x, &[]) - 0.8).abs() < 1e-12);
        let mut acc = StateVec::zeros(2);
        t.accumulate_drift(&x, &[], &mut acc);
        assert!((acc[0] + 0.8).abs() < 1e-12);
        let dbg = format!("{t:?}");
        assert!(dbg.contains("Compiled"));
    }

    #[test]
    fn sparse_integer_changes_round_and_skip_zeros() {
        let t = TransitionClass::new("hop", [-1.0, 0.0, 2.0], |_: &StateVec, _: &[f64]| 1.0);
        assert_eq!(t.sparse_integer_changes(), vec![(0, -1), (2, 2)]);
    }

    #[test]
    fn apply_firings_is_all_or_nothing() {
        let jump = [(0usize, -2i64), (1, 1)];
        let mut counts = vec![10i64, 0, 7];
        assert!(apply_firings(&mut counts, &jump, 3));
        assert_eq!(counts, vec![4, 3, 7]);
        // a fourth triple firing would drive species 0 to -2: rejected,
        // counts untouched
        assert!(!apply_firings(&mut counts, &jump, 3));
        assert_eq!(counts, vec![4, 3, 7]);
        assert!(apply_firings(&mut counts, &jump, 2));
        assert_eq!(counts, vec![0, 5, 7]);
    }

    #[test]
    fn accumulate_firings_aggregates_without_checking() {
        let mut delta = vec![0i64; 3];
        accumulate_firings(&mut delta, &[(0, -1), (1, 1)], 5);
        accumulate_firings(&mut delta, &[(1, -1), (2, 1)], 8);
        // species 1 transiently looks negative in isolation; the aggregate
        // is what a τ-leap accepts or rejects
        assert_eq!(delta, vec![-5, -3, 8]);
    }

    #[test]
    fn explicit_support_is_ignored_for_compiled_rates() {
        let t = TransitionClass::compiled("decay", [-1.0, 0.0], Arc::new(LinearRate::new(2.0, 0)))
            .with_species_support(vec![0, 1]);
        // the program's own support wins
        assert_eq!(t.species_support(), Some(&[0][..]));
    }
}
