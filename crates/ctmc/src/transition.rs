//! Density-dependent transition classes.
//!
//! Population processes are specified by *transition classes* (Section III-A
//! of the paper): each class has a jump vector `ℓ` on the counting variables
//! and a density-dependent rate `N·β(x, ϑ)`, where `x` is the normalised
//! state (counts divided by the scale `N`) and `ϑ` the — possibly imprecise —
//! parameter vector. The drift of the scaled process is then
//! `f(x, ϑ) = Σ_classes ℓ·β(x, ϑ)`, independent of `N`, which is exactly the
//! quantity whose set-valued closure drives the mean-field differential
//! inclusion.

use std::fmt;
use std::sync::Arc;

use mfu_num::StateVec;

/// Rate function type of a transition class: `β(x, ϑ)`.
///
/// The function receives the *normalised* state `x` and the parameter vector
/// `ϑ`, and returns the rate density (the actual CTMC jump rate at population
/// size `N` is `N·β(x, ϑ)`).
pub type RateFn = dyn Fn(&StateVec, &[f64]) -> f64 + Send + Sync;

/// A single transition class of a population model.
///
/// # Example
///
/// The infection transition of the SIR model of Section V: susceptible and
/// infected meet at rate `ϑ·x_S·x_I`, plus an external infection source `a·x_S`.
///
/// ```
/// use mfu_ctmc::transition::TransitionClass;
/// use mfu_num::StateVec;
///
/// let a = 0.1;
/// let infect = TransitionClass::new(
///     "infection",
///     [-1.0, 1.0, 0.0],
///     move |x: &StateVec, theta: &[f64]| a * x[0] + theta[0] * x[0] * x[1],
/// );
/// let rate = infect.rate(&StateVec::from(vec![0.7, 0.3, 0.0]), &[2.0]);
/// assert!((rate - (0.07 + 0.42)).abs() < 1e-12);
/// ```
#[derive(Clone)]
pub struct TransitionClass {
    name: String,
    change: StateVec,
    rate: Arc<RateFn>,
}

impl TransitionClass {
    /// Creates a transition class.
    ///
    /// `change` is the jump vector on the *counting* variables (the
    /// normalised state jumps by `change / N`); `rate` is the density
    /// `β(x, ϑ)`.
    pub fn new<C, F>(name: impl Into<String>, change: C, rate: F) -> Self
    where
        C: Into<StateVec>,
        F: Fn(&StateVec, &[f64]) -> f64 + Send + Sync + 'static,
    {
        TransitionClass {
            name: name.into(),
            change: change.into(),
            rate: Arc::new(rate),
        }
    }

    /// Name of the transition class (used in diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The jump vector on the counting variables.
    pub fn change(&self) -> &StateVec {
        &self.change
    }

    /// Dimension of the state space this class acts on.
    pub fn dim(&self) -> usize {
        self.change.dim()
    }

    /// Evaluates the rate density `β(x, ϑ)`.
    pub fn rate(&self, x: &StateVec, theta: &[f64]) -> f64 {
        (self.rate)(x, theta)
    }

    /// Adds `rate(x, ϑ) · change` into `acc` — one term of the drift sum.
    pub fn accumulate_drift(&self, x: &StateVec, theta: &[f64], acc: &mut StateVec) {
        let r = self.rate(x, theta);
        if r != 0.0 {
            acc.add_scaled(r, &self.change);
        }
    }
}

impl fmt::Debug for TransitionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitionClass")
            .field("name", &self.name)
            .field("change", &self.change)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infection() -> TransitionClass {
        TransitionClass::new("infection", [-1.0, 1.0], |x: &StateVec, theta: &[f64]| {
            theta[0] * x[0] * x[1]
        })
    }

    #[test]
    fn rate_and_change_accessors() {
        let t = infection();
        assert_eq!(t.name(), "infection");
        assert_eq!(t.dim(), 2);
        assert_eq!(t.change().as_slice(), &[-1.0, 1.0]);
        let x = StateVec::from([0.5, 0.2]);
        assert!((t.rate(&x, &[3.0]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn accumulate_drift_adds_scaled_change() {
        let t = infection();
        let x = StateVec::from([0.5, 0.2]);
        let mut acc = StateVec::zeros(2);
        t.accumulate_drift(&x, &[3.0], &mut acc);
        assert!((acc[0] + 0.3).abs() < 1e-12);
        assert!((acc[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_leaves_accumulator_untouched() {
        let t = infection();
        let x = StateVec::from([0.0, 0.2]);
        let mut acc = StateVec::from([1.0, 1.0]);
        t.accumulate_drift(&x, &[3.0], &mut acc);
        assert_eq!(acc.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn clone_shares_rate_function() {
        let t = infection();
        let u = t.clone();
        let x = StateVec::from([1.0, 1.0]);
        assert_eq!(t.rate(&x, &[2.0]), u.rate(&x, &[2.0]));
    }

    #[test]
    fn debug_output_mentions_name() {
        let t = infection();
        let dbg = format!("{t:?}");
        assert!(dbg.contains("infection"));
    }
}
