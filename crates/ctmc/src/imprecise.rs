//! Imprecise (interval-valued) Markov chains on finite state spaces.
//!
//! Section II of the paper introduces imprecise CTMCs, whose probability mass
//! evolves according to the Kolmogorov *differential inclusion*
//! `Ṗ(t) ∈ Q·P(t)` with `Q = ⋃_{ϑ∈Θ} Q^ϑ` (Equation 2). For finite chains we
//! represent the set of generators by interval bounds on every off-diagonal
//! rate and propagate coordinate-wise probability bounds with a differential
//! hull — the same idea later applied to the mean field in Section IV-B, here
//! specialised to the linear dynamics of the probability mass.
//!
//! The state-space dimension of the inclusion equals the number of CTMC
//! states, so this analysis is only practical for small chains; the paper's
//! population-level results exist precisely to avoid this blow-up. The module
//! is nevertheless valuable for validating the population-level machinery on
//! tiny examples.

use serde::{Deserialize, Serialize};

use crate::generator::GeneratorMatrix;
use crate::{CtmcError, Result};

/// Interval bounds on every off-diagonal rate of a finite-state generator.
///
/// # Example
///
/// A two-state chain whose switch-on rate is only known to lie in `[1, 2]`:
///
/// ```
/// use mfu_ctmc::imprecise::IntervalGenerator;
///
/// let mut q = IntervalGenerator::new(2);
/// q.set_rate_bounds(0, 1, 1.0, 2.0)?;
/// q.set_rate_bounds(1, 0, 1.0, 1.0)?;
/// let (lo, hi) = q.transient_bounds(&[1.0, 0.0], 1.0, 1e-3)?;
/// assert!(lo[1] <= hi[1]);
/// assert!(lo[1] > 0.0 && hi[1] <= 1.0);
/// # Ok::<(), mfu_ctmc::CtmcError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalGenerator {
    n: usize,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl IntervalGenerator {
    /// Creates an interval generator on `n` states with all rates fixed to zero.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "an imprecise CTMC needs at least one state");
        IntervalGenerator {
            n,
            lo: vec![0.0; n * n],
            hi: vec![0.0; n * n],
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: the chain has at least one state.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sets the rate interval of the transition `from → to`.
    ///
    /// # Errors
    ///
    /// Returns an error if indices are invalid (out of range or diagonal) or
    /// the bounds are not `0 ≤ lo ≤ hi < ∞`.
    pub fn set_rate_bounds(&mut self, from: usize, to: usize, lo: f64, hi: f64) -> Result<()> {
        if from >= self.n || to >= self.n {
            return Err(CtmcError::DimensionMismatch {
                expected: self.n,
                found: from.max(to) + 1,
            });
        }
        if from == to {
            return Err(CtmcError::invalid_model(
                "cannot bound a diagonal rate directly",
            ));
        }
        if !(lo.is_finite() && hi.is_finite()) || lo < 0.0 || lo > hi {
            return Err(CtmcError::invalid_parameter(format!(
                "invalid rate bounds [{lo}, {hi}] for {from}->{to}"
            )));
        }
        self.lo[from * self.n + to] = lo;
        self.hi[from * self.n + to] = hi;
        Ok(())
    }

    /// Lower bound of the rate `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn rate_lo(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "index out of range");
        self.lo[from * self.n + to]
    }

    /// Upper bound of the rate `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn rate_hi(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "index out of range");
        self.hi[from * self.n + to]
    }

    /// Returns `true` when `generator` respects every interval bound.
    pub fn contains(&self, generator: &GeneratorMatrix) -> bool {
        if generator.len() != self.n {
            return false;
        }
        for i in 0..self.n {
            for j in 0..self.n {
                if i == j {
                    continue;
                }
                let r = generator.rate(i, j);
                if r < self.rate_lo(i, j) - 1e-12 || r > self.rate_hi(i, j) + 1e-12 {
                    return false;
                }
            }
        }
        true
    }

    /// The generator obtained by fixing every rate to its interval midpoint.
    pub fn midpoint_generator(&self) -> GeneratorMatrix {
        let mut q = GeneratorMatrix::new(self.n);
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let mid = 0.5 * (self.rate_lo(i, j) + self.rate_hi(i, j));
                    if mid > 0.0 {
                        q.set_rate(i, j, mid)
                            .expect("validated bounds produce valid rates");
                    }
                }
            }
        }
        q
    }

    /// Coordinate-wise bounds on the transient probability mass of the
    /// imprecise chain: the differential-hull relaxation of the Kolmogorov
    /// inclusion `Ṗ ∈ Q·P` (Equation 2 of the paper), integrated with an
    /// explicit Euler scheme of step `step`.
    ///
    /// Returns `(lower, upper)` bounds on `P(X_t = x)` for every state `x`,
    /// each clamped to `[0, 1]`. The bounds are guaranteed to contain the
    /// transient distribution of every CTMC whose generator respects the
    /// interval bounds at every instant, but they are generally not tight.
    ///
    /// # Errors
    ///
    /// Returns an error if `initial` is not a distribution over the chain's
    /// states, or `t`/`step` are not positive and finite.
    pub fn transient_bounds(
        &self,
        initial: &[f64],
        t: f64,
        step: f64,
    ) -> Result<(Vec<f64>, Vec<f64>)> {
        if initial.len() != self.n {
            return Err(CtmcError::DimensionMismatch {
                expected: self.n,
                found: initial.len(),
            });
        }
        let total: f64 = initial.iter().sum();
        if initial.iter().any(|&p| p < 0.0 || !p.is_finite()) || (total - 1.0).abs() > 1e-6 {
            return Err(CtmcError::invalid_parameter(
                "initial distribution is not a probability vector",
            ));
        }
        if t < 0.0 || !t.is_finite() || step <= 0.0 || !step.is_finite() {
            return Err(CtmcError::invalid_parameter(
                "horizon and step must be positive and finite",
            ));
        }

        let mut lower = initial.to_vec();
        let mut upper = initial.to_vec();
        if t == 0.0 {
            return Ok((lower, upper));
        }
        let n_steps = (t / step).ceil().max(1.0) as usize;
        let h = t / n_steps as f64;

        // Pre-compute worst-case exit rates per state.
        let max_exit: Vec<f64> = (0..self.n)
            .map(|i| {
                (0..self.n)
                    .filter(|&j| j != i)
                    .map(|j| self.rate_hi(i, j))
                    .sum()
            })
            .collect();
        let min_exit: Vec<f64> = (0..self.n)
            .map(|i| {
                (0..self.n)
                    .filter(|&j| j != i)
                    .map(|j| self.rate_lo(i, j))
                    .sum()
            })
            .collect();

        let mut d_lower = vec![0.0; self.n];
        let mut d_upper = vec![0.0; self.n];
        for _ in 0..n_steps {
            for x in 0..self.n {
                // Lower bound: least inflow (lower rates, lower probabilities)
                // minus largest outflow from the current lower bound.
                let inflow_lo: f64 = (0..self.n)
                    .filter(|&y| y != x)
                    .map(|y| self.rate_lo(y, x) * lower[y])
                    .sum();
                d_lower[x] = inflow_lo - max_exit[x] * lower[x];
                // Upper bound: largest inflow minus least outflow.
                let inflow_hi: f64 = (0..self.n)
                    .filter(|&y| y != x)
                    .map(|y| self.rate_hi(y, x) * upper[y])
                    .sum();
                d_upper[x] = inflow_hi - min_exit[x] * upper[x];
            }
            for x in 0..self.n {
                lower[x] = (lower[x] + h * d_lower[x]).clamp(0.0, 1.0);
                upper[x] = (upper[x] + h * d_upper[x]).clamp(0.0, 1.0);
            }
        }
        Ok((lower, upper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_interval() -> IntervalGenerator {
        let mut q = IntervalGenerator::new(2);
        q.set_rate_bounds(0, 1, 1.0, 2.0).unwrap();
        q.set_rate_bounds(1, 0, 1.0, 1.0).unwrap();
        q
    }

    #[test]
    fn bounds_validation() {
        let mut q = IntervalGenerator::new(2);
        assert!(q.set_rate_bounds(0, 0, 1.0, 2.0).is_err());
        assert!(q.set_rate_bounds(0, 3, 1.0, 2.0).is_err());
        assert!(q.set_rate_bounds(0, 1, -1.0, 2.0).is_err());
        assert!(q.set_rate_bounds(0, 1, 2.0, 1.0).is_err());
        assert!(q.set_rate_bounds(0, 1, 1.0, f64::INFINITY).is_err());
        assert!(q.set_rate_bounds(0, 1, 1.0, 2.0).is_ok());
        assert_eq!(q.rate_lo(0, 1), 1.0);
        assert_eq!(q.rate_hi(0, 1), 2.0);
    }

    #[test]
    fn contains_checks_every_rate() {
        let iq = two_state_interval();
        let mut inside = GeneratorMatrix::new(2);
        inside.set_rate(0, 1, 1.5).unwrap();
        inside.set_rate(1, 0, 1.0).unwrap();
        assert!(iq.contains(&inside));

        let mut outside = GeneratorMatrix::new(2);
        outside.set_rate(0, 1, 3.0).unwrap();
        outside.set_rate(1, 0, 1.0).unwrap();
        assert!(!iq.contains(&outside));

        assert!(!iq.contains(&GeneratorMatrix::new(3)));
    }

    #[test]
    fn midpoint_generator_uses_interval_midpoints() {
        let iq = two_state_interval();
        let q = iq.midpoint_generator();
        assert!((q.rate(0, 1) - 1.5).abs() < 1e-12);
        assert!((q.rate(1, 0) - 1.0).abs() < 1e-12);
        assert!(iq.contains(&q));
    }

    #[test]
    fn degenerate_intervals_reproduce_exact_transient() {
        // When lo == hi for every rate, the bounds must (tightly) bracket the
        // exact uniformization answer, up to the Euler discretisation error.
        let mut iq = IntervalGenerator::new(2);
        iq.set_rate_bounds(0, 1, 2.0, 2.0).unwrap();
        iq.set_rate_bounds(1, 0, 1.0, 1.0).unwrap();
        let exact = iq
            .midpoint_generator()
            .transient_distribution(&[1.0, 0.0], 0.8, 1e-10)
            .unwrap();
        let (lo, hi) = iq.transient_bounds(&[1.0, 0.0], 0.8, 1e-4).unwrap();
        for i in 0..2 {
            assert!(lo[i] <= exact[i] + 1e-3, "state {i}: {lo:?} vs {exact:?}");
            assert!(hi[i] >= exact[i] - 1e-3, "state {i}: {hi:?} vs {exact:?}");
            assert!(hi[i] - lo[i] < 5e-3, "degenerate bounds should be tight");
        }
    }

    #[test]
    fn bounds_contain_every_constant_generator_in_the_box() {
        let iq = two_state_interval();
        let (lo, hi) = iq.transient_bounds(&[1.0, 0.0], 1.0, 1e-4).unwrap();
        for &rate in &[1.0, 1.3, 1.7, 2.0] {
            let mut q = GeneratorMatrix::new(2);
            q.set_rate(0, 1, rate).unwrap();
            q.set_rate(1, 0, 1.0).unwrap();
            assert!(iq.contains(&q));
            let p = q.transient_distribution(&[1.0, 0.0], 1.0, 1e-10).unwrap();
            for i in 0..2 {
                assert!(p[i] >= lo[i] - 1e-6, "rate {rate}, state {i}");
                assert!(p[i] <= hi[i] + 1e-6, "rate {rate}, state {i}");
            }
        }
    }

    #[test]
    fn zero_horizon_returns_initial() {
        let iq = two_state_interval();
        let (lo, hi) = iq.transient_bounds(&[0.4, 0.6], 0.0, 1e-3).unwrap();
        assert_eq!(lo, vec![0.4, 0.6]);
        assert_eq!(hi, vec![0.4, 0.6]);
    }

    #[test]
    fn transient_bounds_validate_inputs() {
        let iq = two_state_interval();
        assert!(iq.transient_bounds(&[1.0], 1.0, 1e-3).is_err());
        assert!(iq.transient_bounds(&[0.7, 0.7], 1.0, 1e-3).is_err());
        assert!(iq.transient_bounds(&[1.0, 0.0], -1.0, 1e-3).is_err());
        assert!(iq.transient_bounds(&[1.0, 0.0], 1.0, 0.0).is_err());
    }

    #[test]
    fn bounds_widen_with_interval_width() {
        let narrow = two_state_interval();
        let mut wide = IntervalGenerator::new(2);
        wide.set_rate_bounds(0, 1, 0.5, 4.0).unwrap();
        wide.set_rate_bounds(1, 0, 1.0, 1.0).unwrap();
        let (nl, nh) = narrow.transient_bounds(&[1.0, 0.0], 1.0, 1e-4).unwrap();
        let (wl, wh) = wide.transient_bounds(&[1.0, 0.0], 1.0, 1e-4).unwrap();
        assert!(wh[1] - wl[1] > nh[1] - nl[1]);
    }
}
