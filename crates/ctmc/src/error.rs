use std::fmt;

use mfu_num::NumError;

/// Error type for the CTMC and population-process layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CtmcError {
    /// A parameter interval or box was malformed (e.g. lower bound above upper).
    InvalidParameter {
        /// Description of the offending parameter.
        message: String,
    },
    /// A model definition was inconsistent (wrong dimensions, no transitions, …).
    InvalidModel {
        /// Description of the inconsistency.
        message: String,
    },
    /// A state, parameter vector or distribution had the wrong dimension.
    DimensionMismatch {
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        found: usize,
    },
    /// A rate function returned a negative or non-finite value.
    InvalidRate {
        /// Name of the transition class whose rate misbehaved.
        transition: String,
        /// The offending rate value.
        rate: f64,
    },
    /// The explicit state-space expansion exceeded its configured limit.
    StateSpaceTooLarge {
        /// Configured maximum number of states.
        limit: usize,
    },
    /// An underlying numerical routine failed.
    Numerical(NumError),
}

impl CtmcError {
    /// Creates an [`CtmcError::InvalidParameter`] from anything printable.
    pub fn invalid_parameter(message: impl Into<String>) -> Self {
        CtmcError::InvalidParameter {
            message: message.into(),
        }
    }

    /// Creates an [`CtmcError::InvalidModel`] from anything printable.
    pub fn invalid_model(message: impl Into<String>) -> Self {
        CtmcError::InvalidModel {
            message: message.into(),
        }
    }
}

impl fmt::Display for CtmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtmcError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            CtmcError::InvalidModel { message } => write!(f, "invalid model: {message}"),
            CtmcError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            CtmcError::InvalidRate { transition, rate } => {
                write!(
                    f,
                    "transition '{transition}' produced an invalid rate {rate}"
                )
            }
            CtmcError::StateSpaceTooLarge { limit } => {
                write!(
                    f,
                    "state-space expansion exceeded the limit of {limit} states"
                )
            }
            CtmcError::Numerical(err) => write!(f, "numerical error: {err}"),
        }
    }
}

impl std::error::Error for CtmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CtmcError::Numerical(err) => Some(err),
            _ => None,
        }
    }
}

impl From<NumError> for CtmcError {
    fn from(err: NumError) -> Self {
        CtmcError::Numerical(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CtmcError::invalid_parameter("bad box")
            .to_string()
            .contains("bad box"));
        assert!(CtmcError::invalid_model("no transitions")
            .to_string()
            .contains("no transitions"));
        let err = CtmcError::DimensionMismatch {
            expected: 2,
            found: 3,
        };
        assert!(err.to_string().contains("expected 2"));
        let err = CtmcError::InvalidRate {
            transition: "infect".into(),
            rate: -1.0,
        };
        assert!(err.to_string().contains("infect"));
        let err = CtmcError::StateSpaceTooLarge { limit: 10 };
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn wraps_numerical_errors() {
        let err: CtmcError = NumError::invalid_argument("negative step").into();
        assert!(err.to_string().contains("negative step"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<CtmcError>();
    }
}
