//! Explicit state-space expansion of population models.
//!
//! For a *finite* population size `N` and a *fixed* parameter `ϑ`, a
//! population model is an ordinary finite CTMC whose states are the count
//! vectors reachable from the initial counts. This module enumerates that
//! chain and produces a [`GeneratorMatrix`], which lets us compute exact
//! transient and stationary distributions on small instances and validate
//! the stochastic simulator and the mean-field approximation against them —
//! the same role the `N = 100 / 1000 / 10000` comparisons play in Figure 6 of
//! the paper, but with exact numerics instead of sampling.

use std::collections::{HashMap, VecDeque};

use mfu_num::StateVec;

use crate::generator::GeneratorMatrix;
use crate::population::PopulationModel;
use crate::{CtmcError, Result};

/// Options controlling the breadth-first state-space expansion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpansionOptions {
    /// Hard cap on the number of enumerated states.
    pub max_states: usize,
    /// Rates below this threshold are treated as structurally zero.
    pub rate_cutoff: f64,
}

impl Default for ExpansionOptions {
    fn default() -> Self {
        ExpansionOptions {
            max_states: 200_000,
            rate_cutoff: 1e-12,
        }
    }
}

/// A finite CTMC obtained by expanding a population model at scale `N`.
#[derive(Debug, Clone)]
pub struct FiniteChain {
    scale: usize,
    states: Vec<Vec<i64>>,
    index: HashMap<Vec<i64>, usize>,
    generator: GeneratorMatrix,
    initial: usize,
}

impl FiniteChain {
    /// Expands the chain reachable from `initial_counts` under parameter `theta`.
    ///
    /// `initial_counts` are integer counts (they sum to `N` for conservative
    /// models, but this is not required); `theta` is a fixed parameter value,
    /// i.e. the chain of the *uncertain* scenario for one candidate `ϑ`.
    ///
    /// # Errors
    ///
    /// Returns an error if dimensions are inconsistent, a rate evaluates to a
    /// negative or non-finite value, or the expansion exceeds
    /// [`ExpansionOptions::max_states`].
    pub fn expand(
        model: &PopulationModel,
        scale: usize,
        initial_counts: &[i64],
        theta: &[f64],
        options: &ExpansionOptions,
    ) -> Result<Self> {
        if scale == 0 {
            return Err(CtmcError::invalid_parameter(
                "population scale must be positive",
            ));
        }
        if initial_counts.len() != model.dim() {
            return Err(CtmcError::DimensionMismatch {
                expected: model.dim(),
                found: initial_counts.len(),
            });
        }
        if theta.len() != model.params().dim() {
            return Err(CtmcError::DimensionMismatch {
                expected: model.params().dim(),
                found: theta.len(),
            });
        }

        // Pre-convert the jump vectors to integers once.
        let jumps: Vec<Vec<i64>> = model
            .transitions()
            .iter()
            .map(|t| t.change().iter().map(|&v| v.round() as i64).collect())
            .collect();

        let mut states: Vec<Vec<i64>> = Vec::new();
        let mut index: HashMap<Vec<i64>, usize> = HashMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        // edges as (from, to, rate)
        let mut edges: Vec<(usize, usize, f64)> = Vec::new();

        let initial_vec = initial_counts.to_vec();
        index.insert(initial_vec.clone(), 0);
        states.push(initial_vec);
        queue.push_back(0);

        while let Some(current) = queue.pop_front() {
            let counts = states[current].clone();
            let x: StateVec = counts.iter().map(|&c| c as f64 / scale as f64).collect();
            for (class, jump) in model.transitions().iter().zip(jumps.iter()) {
                let density = class.rate(&x, theta);
                if !density.is_finite() || density < 0.0 {
                    return Err(CtmcError::InvalidRate {
                        transition: class.name().to_string(),
                        rate: density,
                    });
                }
                let rate = density * scale as f64;
                if rate <= options.rate_cutoff {
                    continue;
                }
                let target: Vec<i64> = counts.iter().zip(jump.iter()).map(|(c, j)| c + j).collect();
                if target.iter().any(|&c| c < 0) {
                    // A structurally impossible jump whose rate did not vanish
                    // exactly (e.g. through floating-point noise at the
                    // boundary); skip it rather than creating negative counts.
                    continue;
                }
                let target_idx = match index.get(&target) {
                    Some(&i) => i,
                    None => {
                        if states.len() >= options.max_states {
                            return Err(CtmcError::StateSpaceTooLarge {
                                limit: options.max_states,
                            });
                        }
                        let i = states.len();
                        index.insert(target.clone(), i);
                        states.push(target);
                        queue.push_back(i);
                        i
                    }
                };
                edges.push((current, target_idx, rate));
            }
        }

        let mut generator = GeneratorMatrix::new(states.len());
        for (from, to, rate) in edges {
            if from != to {
                generator.add_rate(from, to, rate)?;
            }
        }

        Ok(FiniteChain {
            scale,
            states,
            index,
            generator,
            initial: 0,
        })
    }

    /// The population scale `N` used for the expansion.
    pub fn scale(&self) -> usize {
        self.scale
    }

    /// Number of enumerated states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`: the initial state is always present.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The enumerated count vectors.
    pub fn states(&self) -> &[Vec<i64>] {
        &self.states
    }

    /// The exact generator of the expanded chain.
    pub fn generator(&self) -> &GeneratorMatrix {
        &self.generator
    }

    /// Index of a count vector, if it was reached during the expansion.
    pub fn index_of(&self, counts: &[i64]) -> Option<usize> {
        self.index.get(counts).copied()
    }

    /// Normalised (density) state of the `i`-th enumerated state.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn normalized_state(&self, i: usize) -> StateVec {
        self.states[i]
            .iter()
            .map(|&c| c as f64 / self.scale as f64)
            .collect()
    }

    /// The Dirac initial distribution concentrated on the expansion's seed state.
    pub fn initial_distribution(&self) -> Vec<f64> {
        let mut p = vec![0.0; self.len()];
        p[self.initial] = 1.0;
        p
    }

    /// Mean of the normalised state under a distribution over the chain's states.
    ///
    /// # Errors
    ///
    /// Returns an error if the distribution length does not match the chain.
    pub fn mean_normalized(&self, distribution: &[f64]) -> Result<StateVec> {
        if distribution.len() != self.len() {
            return Err(CtmcError::DimensionMismatch {
                expected: self.len(),
                found: distribution.len(),
            });
        }
        let dim = self.states[0].len();
        let mut mean = StateVec::zeros(dim);
        for (p, counts) in distribution.iter().zip(self.states.iter()) {
            for (k, &c) in counts.iter().enumerate() {
                mean[k] += p * c as f64 / self.scale as f64;
            }
        }
        Ok(mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Interval, ParamSpace};
    use crate::transition::TransitionClass;

    /// Single-station bike-sharing model: one variable counting available bikes,
    /// capacity = scale N.
    fn bike_model() -> PopulationModel {
        let params = ParamSpace::new(vec![
            ("arrival", Interval::new(0.5, 1.5).unwrap()),
            ("return", Interval::new(0.5, 1.5).unwrap()),
        ])
        .unwrap();
        PopulationModel::builder(1, params)
            .variable_names(vec!["bikes"])
            .transition(TransitionClass::new(
                "pickup",
                [-1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] > 0.0 {
                        th[0]
                    } else {
                        0.0
                    }
                },
            ))
            .transition(TransitionClass::new(
                "return",
                [1.0],
                |x: &StateVec, th: &[f64]| {
                    if x[0] < 1.0 {
                        th[1]
                    } else {
                        0.0
                    }
                },
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn bike_station_expands_to_birth_death_chain() {
        let model = bike_model();
        let chain = FiniteChain::expand(&model, 5, &[2], &[1.0, 1.0], &ExpansionOptions::default())
            .unwrap();
        // all levels 0..=5 are reachable
        assert_eq!(chain.len(), 6);
        assert_eq!(chain.scale(), 5);
        assert!(chain.index_of(&[0]).is_some());
        assert!(chain.index_of(&[5]).is_some());
        assert!(chain.index_of(&[6]).is_none());
        // symmetric rates => uniform stationary distribution
        let pi = chain
            .generator()
            .stationary_distribution(1e-12, 1_000_000)
            .unwrap();
        for &p in &pi {
            assert!((p - 1.0 / 6.0).abs() < 1e-8, "{pi:?}");
        }
    }

    #[test]
    fn asymmetric_rates_give_geometric_occupancy() {
        let model = bike_model();
        // arrivals (pickups) twice as fast as returns => station drains
        let chain = FiniteChain::expand(&model, 4, &[2], &[2.0, 1.0], &ExpansionOptions::default())
            .unwrap();
        let pi = chain
            .generator()
            .stationary_distribution(1e-13, 1_000_000)
            .unwrap();
        // birth-death chain with down-rate 2 and up-rate 1: π_k ∝ (1/2)^k
        let idx0 = chain.index_of(&[0]).unwrap();
        let idx1 = chain.index_of(&[1]).unwrap();
        assert!(pi[idx0] > pi[idx1]);
        assert!((pi[idx1] / pi[idx0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mean_normalized_matches_hand_computation() {
        let model = bike_model();
        let chain = FiniteChain::expand(&model, 2, &[1], &[1.0, 1.0], &ExpansionOptions::default())
            .unwrap();
        assert_eq!(chain.len(), 3);
        let uniform = vec![1.0 / 3.0; 3];
        let mean = chain.mean_normalized(&uniform).unwrap();
        // states are 0, 1, 2 bikes out of N = 2 → densities 0, 0.5, 1
        assert!((mean[0] - 0.5).abs() < 1e-12);
        assert!(chain.mean_normalized(&[1.0]).is_err());
    }

    #[test]
    fn initial_distribution_is_dirac() {
        let model = bike_model();
        let chain = FiniteChain::expand(&model, 3, &[1], &[1.0, 1.0], &ExpansionOptions::default())
            .unwrap();
        let p0 = chain.initial_distribution();
        assert_eq!(p0.iter().filter(|&&v| v > 0.0).count(), 1);
        assert_eq!(p0[chain.index_of(&[1]).unwrap()], 1.0);
    }

    #[test]
    fn expansion_respects_state_limit() {
        let model = bike_model();
        let options = ExpansionOptions {
            max_states: 3,
            ..Default::default()
        };
        let res = FiniteChain::expand(&model, 100, &[50], &[1.0, 1.0], &options);
        assert!(matches!(res, Err(CtmcError::StateSpaceTooLarge { .. })));
    }

    #[test]
    fn expansion_validates_inputs() {
        let model = bike_model();
        let options = ExpansionOptions::default();
        assert!(FiniteChain::expand(&model, 0, &[1], &[1.0, 1.0], &options).is_err());
        assert!(FiniteChain::expand(&model, 3, &[1, 2], &[1.0, 1.0], &options).is_err());
        assert!(FiniteChain::expand(&model, 3, &[1], &[1.0], &options).is_err());
    }

    #[test]
    fn normalized_state_divides_by_scale() {
        let model = bike_model();
        let chain = FiniteChain::expand(&model, 4, &[2], &[1.0, 1.0], &ExpansionOptions::default())
            .unwrap();
        let idx = chain.index_of(&[3]).unwrap();
        assert!((chain.normalized_state(idx)[0] - 0.75).abs() < 1e-12);
    }
}
