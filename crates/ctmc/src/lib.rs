//! Continuous-time Markov chain and population-process substrate.
//!
//! This crate implements the modelling layer of the reproduction of
//! Bortolussi & Gast, *Mean Field Approximation of Uncertain Stochastic
//! Models* (DSN 2016):
//!
//! * [`params`] — uncertainty sets `Θ` (boxes of parameter intervals, Section
//!   I/II of the paper) with vertex enumeration and grid sampling;
//! * [`transition`] — density-dependent transition classes, the standard way
//!   of specifying population processes (Section III-A). Rates are either
//!   native Rust closures ([`TransitionClass::new`](transition::TransitionClass::new),
//!   optionally annotated with
//!   [`with_species_support`](transition::TransitionClass::with_species_support))
//!   or compiled programs implementing
//!   [`CompiledRate`](transition::CompiledRate) — e.g. the flat bytecode the
//!   `mfu-lang` DSL lowers to, guards included — whose per-transition
//!   species supports drive the dependency-graph Gillespie path in
//!   `mfu-sim`;
//! * [`population`] — [`PopulationModel`](population::PopulationModel): a set
//!   of transition classes with a parameter space, its drift, and numerical
//!   checks of the scaling assumptions of Definition 4;
//! * [`generator`] — dense generator matrices for *finite* CTMCs,
//!   uniformization for transient distributions and stationary solutions,
//!   used to validate both the simulator and the mean-field limit on small
//!   populations;
//! * [`finite`] — explicit state-space expansion of a population model for a
//!   finite population size `N` and a fixed parameter, bridging the
//!   population layer and the finite-chain layer;
//! * [`imprecise`] — interval-valued generators (imprecise Markov chains of
//!   Section II) and coordinate-wise bounds on the Kolmogorov differential
//!   inclusion (Equation 2 of the paper).
//!
//! # Example
//!
//! Build the single-station bike-sharing model from Section II of the paper
//! and evaluate its drift:
//!
//! ```
//! use mfu_ctmc::params::{Interval, ParamSpace};
//! use mfu_ctmc::population::PopulationModel;
//! use mfu_ctmc::transition::TransitionClass;
//! use mfu_num::StateVec;
//!
//! // One variable: the fraction of occupied bike racks.
//! let space = ParamSpace::new(vec![
//!     ("arrival", Interval::new(0.5, 1.5)?),
//!     ("return", Interval::new(0.8, 1.2)?),
//! ])?;
//! let model = PopulationModel::builder(1, space)
//!     .transition(TransitionClass::new("pickup", [-1.0], |x: &StateVec, theta: &[f64]| {
//!         if x[0] > 0.0 { theta[0] } else { 0.0 }
//!     }))
//!     .transition(TransitionClass::new("return", [1.0], |x: &StateVec, theta: &[f64]| {
//!         if x[0] < 1.0 { theta[1] } else { 0.0 }
//!     }))
//!     .build()?;
//!
//! let drift = model.drift(&StateVec::from(vec![0.4]), &[1.0, 1.0])?;
//! assert!(drift[0].abs() < 1e-12); // balanced rates => zero drift
//! # Ok::<(), mfu_ctmc::CtmcError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod finite;
pub mod generator;
pub mod imprecise;
pub mod params;
pub mod population;
pub mod transition;

pub use error::CtmcError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CtmcError>;
