//! Mean-field approximation of uncertain stochastic models.
//!
//! This is the umbrella crate of the workspace reproducing Bortolussi & Gast,
//! *Mean Field Approximation of Uncertain Stochastic Models* (DSN 2016). It
//! re-exports the individual crates under stable module names so that
//! applications can depend on a single crate:
//!
//! * [`num`] — numerical substrate (state vectors, ODE solvers, root finding,
//!   planar geometry);
//! * [`obs`] — observability (zero-cost-when-off metrics counters/timers
//!   and a line-delimited JSON run tracer);
//! * [`guard`] — robustness substrate (run budgets and deadlines,
//!   numeric-health sentinels, deterministic fault-injection plans);
//! * [`ctmc`] — population-process and finite-CTMC substrate;
//! * [`sim`] — stochastic simulation (Gillespie SSA, parameter policies,
//!   ensembles);
//! * [`core`] — the paper's contribution: differential-inclusion mean-field
//!   limits, differential hulls, Pontryagin bounds, Birkhoff centres, robust
//!   tuning;
//! * [`models`] — the paper's case studies (SIR, bike sharing, GPS queueing)
//!   plus SIS/SEIR variants;
//! * [`lang`] — a textual model DSL for imprecise population CTMCs with a
//!   scenario registry, compiling to both the population and the drift
//!   backends (guarded/piecewise rates, shared `let` subexpressions, a
//!   bytecode rate engine — see `docs/mfu-lang.md`), plus canonical model
//!   hashing and content-addressed interning;
//! * [`serve`] — a long-running query service: compiled-model and
//!   bound-artifact caches behind a line-delimited-JSON-over-TCP protocol
//!   (`mfu serve` / `mfu query`).
//!
//! The `mfu` command-line front-end (`crates/cli`, not re-exported here)
//! runs, checks and lists models without writing Rust:
//! `mfu run gps --bound Q1@3 --simulate 2000`.
//!
//! # Quick start
//!
//! Bound the infected fraction of the paper's SIR epidemic at time `T = 3`
//! under an imprecise contact rate:
//!
//! ```
//! use mean_field_uncertain::core::pontryagin::{PontryaginOptions, PontryaginSolver};
//! use mean_field_uncertain::models::sir::SirModel;
//!
//! let sir = SirModel::paper();
//! let drift = sir.reduced_drift();
//! let solver = PontryaginSolver::new(PontryaginOptions { grid_intervals: 120, ..Default::default() });
//! let (lo, hi) = solver.coordinate_extremes(&drift, &sir.reduced_initial_state(), 3.0, 1)?;
//! assert!(0.0 <= lo && lo < hi && hi <= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The runnable examples in `examples/` (`quickstart`, `dsl_quickstart`,
//! `sir_epidemic`, `gps_robust_tuning`, `bike_sharing`) walk through the full
//! analyses of the paper's evaluation section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mfu_core as core;
pub use mfu_ctmc as ctmc;
pub use mfu_guard as guard;
pub use mfu_lang as lang;
pub use mfu_models as models;
pub use mfu_num as num;
pub use mfu_obs as obs;
pub use mfu_serve as serve;
pub use mfu_sim as sim;
